package main

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// readBenchJSON loads a benchmark artifact written by writeBenchJSON.
func readBenchJSON(path string) (benchFile, error) {
	var f benchFile
	data, err := os.ReadFile(path)
	if err != nil {
		return f, err
	}
	if err := json.Unmarshal(data, &f); err != nil {
		return f, fmt.Errorf("%s: %w", path, err)
	}
	return f, nil
}

// compareBench diffs a fresh benchmark run against a committed baseline
// artifact: every baseline entry whose name starts with one of the gate
// prefixes must exist in the fresh run and must not regress its
// per-operation time by more than tol (0.25 = 25% slower). It returns a
// human-readable report and the list of violations (empty = gate
// passes). Entries outside the gate prefixes are reported for context
// but never fail the comparison.
//
// Baselines are committed artifacts measured on whatever machine cut
// the PR, while the fresh run executes on an arbitrary (CI) host, so
// raw ns/op ratios would gate on hardware speed as much as on code.
// When calibrate is non-empty, the median fresh/baseline ratio over the
// entries matching that prefix is treated as the machine-speed factor
// and divided out of every gated ratio before the tolerance check.
func compareBench(fresh, baseline benchFile, prefixes []string, tol float64, calibrate string) (string, []string) {
	freshBy := make(map[string]benchEntry, len(fresh.Benchmarks))
	for _, b := range fresh.Benchmarks {
		freshBy[b.Name] = b
	}
	gated := func(name string) bool {
		for _, p := range prefixes {
			if p != "" && strings.HasPrefix(name, p) {
				return true
			}
		}
		return false
	}

	var rep strings.Builder
	var failures []string
	speed := 1.0
	if calibrate != "" {
		var ratios []float64
		for _, b := range baseline.Benchmarks {
			if !strings.HasPrefix(b.Name, calibrate) || b.NsPerOp <= 0 {
				continue
			}
			if f, ok := freshBy[b.Name]; ok && f.NsPerOp > 0 {
				ratios = append(ratios, f.NsPerOp/b.NsPerOp)
			}
		}
		if len(ratios) > 0 {
			sort.Float64s(ratios)
			speed = ratios[len(ratios)/2]
		} else {
			// A calibration prefix that matches nothing means the gate
			// would silently compare raw timings across machines — the
			// failure mode calibration exists to prevent. Fail loudly.
			failures = append(failures, fmt.Sprintf(
				"calibration prefix %q matched no entries present in both runs; gate cannot normalise machine speed", calibrate))
		}
	}
	fmt.Fprintf(&rep, "bench comparison: fresh %q vs baseline %q (tolerance %.0f%% on %s)\n",
		fresh.Experiment, baseline.Experiment, tol*100, strings.Join(prefixes, ", "))
	if calibrate != "" {
		fmt.Fprintf(&rep, "machine-speed calibration: median fresh/baseline over %q entries = %.2fx (divided out of gated ratios)\n",
			calibrate, speed)
	}
	names := make([]string, 0, len(baseline.Benchmarks))
	baseBy := make(map[string]benchEntry, len(baseline.Benchmarks))
	for _, b := range baseline.Benchmarks {
		names = append(names, b.Name)
		baseBy[b.Name] = b
	}
	sort.Strings(names)
	for _, name := range names {
		base := baseBy[name]
		f, ok := freshBy[name]
		mark := " "
		switch {
		case !ok:
			if gated(name) {
				failures = append(failures, fmt.Sprintf("%s: present in baseline but missing from the fresh run", name))
				mark = "✗"
			}
			fmt.Fprintf(&rep, "%s %-32s baseline %12.0f ns/op   fresh (missing)\n", mark, name, base.NsPerOp)
			continue
		case base.NsPerOp <= 0:
			fmt.Fprintf(&rep, "%s %-32s baseline has no timing, skipped\n", mark, name)
			continue
		}
		ratio := f.NsPerOp / base.NsPerOp
		if gated(name) {
			if ratio/speed > 1+tol {
				failures = append(failures, fmt.Sprintf("%s: %.0f ns/op vs baseline %.0f ns/op = %.2fx calibrated (limit %.2fx)",
					name, f.NsPerOp, base.NsPerOp, ratio/speed, 1+tol))
				mark = "✗"
			} else {
				mark = "✓"
			}
			// Allocation counters need no machine-speed calibration: the
			// same code does the same allocations on any host, so a fresh
			// run exceeding the committed baseline is a real regression.
			if base.AllocsPerOp > 0 && f.AllocsPerOp/base.AllocsPerOp > 1+tol {
				failures = append(failures, fmt.Sprintf("%s: %.0f allocs/op vs baseline %.0f allocs/op = %.2fx (limit %.2fx)",
					name, f.AllocsPerOp, base.AllocsPerOp, f.AllocsPerOp/base.AllocsPerOp, 1+tol))
				mark = "✗"
			}
			if base.BytesPerOp > 0 && f.BytesPerOp/base.BytesPerOp > 1+tol {
				failures = append(failures, fmt.Sprintf("%s: %.0f B/op vs baseline %.0f B/op = %.2fx (limit %.2fx)",
					name, f.BytesPerOp, base.BytesPerOp, f.BytesPerOp/base.BytesPerOp, 1+tol))
				mark = "✗"
			}
		}
		fmt.Fprintf(&rep, "%s %-32s baseline %12.0f ns/op   fresh %12.0f ns/op   %5.2fx\n",
			mark, name, base.NsPerOp, f.NsPerOp, ratio)
		if base.AllocsPerOp > 0 && f.AllocsPerOp > 0 {
			fmt.Fprintf(&rep, "  %-32s baseline %12.0f allocs/op fresh %12.0f allocs/op %5.2fx\n",
				"", base.AllocsPerOp, f.AllocsPerOp, f.AllocsPerOp/base.AllocsPerOp)
		}
	}
	return rep.String(), failures
}
