package main

import (
	"context"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"strconv"
	"strings"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/join"
)

// memExperiment is the memory-diet harness behind `make bench-mem`
// (BENCH_PR8.json): per workload bucket it runs the same pre-computed
// plans through three executors —
//
//   - rowref: the frozen pre-columnar executor (one heap []int per
//     tuple, string-keyed hash maps), the live allocation baseline;
//   - scan: the slice-scan kernel on columnar storage;
//   - indexed: the default hash-indexed kernel on columnar storage;
//
// — and records allocs/op, bytes/op, GC pause totals, and wall time
// for a cold pass and a best-of-rounds warm pass each, plus the
// process's peak RSS (VmHWM). Two walls run inside the experiment
// before anything is written:
//
//  1. row identity: both columnar kernels must reproduce the rowref
//     executor's rows byte for byte, order included, on every instance;
//  2. allocation diet: the indexed kernel's warm allocs/op AND
//     bytes/op must be at most half the rowref baseline's in every
//     bucket — the ≥2x reduction the columnar refactor exists for.
//
// Counters come from runtime.MemStats deltas around each pass (after
// a forced GC, so carry-over garbage doesn't pollute the window);
// result materialisation for the identity wall happens outside the
// window, so engines are charged for evaluation only. Allocation
// counts are machine-independent; the committed artifact gates them
// in CI without speed calibration (see compareBench).
func memExperiment(ctx context.Context, cfg harness.Config, rounds int, jsonPath string) (*harness.Table, error) {
	if rounds < 1 {
		rounds = 1
	}
	type bucket struct {
		name string
		gen  func() []execInstance
	}
	buckets := []bucket{
		{"chain8", func() []execInstance { return chainInstances(8, 5, 4000, 8000) }},
		{"star6", func() []execInstance { return starInstances(6, 6, 800, 400) }},
	}

	out := benchFile{
		Experiment:  "mem",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Memory diet: pre-columnar rowref vs columnar scan vs columnar indexed",
		Headers: []string{"Bucket", "N", "engine",
			"warm-ms", "allocs/op", "KB/op", "gc-pause-ms", "vs-rowref-allocs"},
	}

	for _, b := range buckets {
		instances := b.gen()
		for i := range instances {
			h, err := instances[i].q.Hypergraph()
			if err != nil {
				return nil, fmt.Errorf("bucket %s: %w", b.name, err)
			}
			_, d, ok, err := htd.OptimalWidth(ctx, h, cfg.KMax)
			if err != nil || !ok {
				return nil, fmt.Errorf("bucket %s %s: no plan (ok=%v err=%v)", b.name, instances[i].name, ok, err)
			}
			instances[i].d = d
		}
		// The row-layout image of each database is built once, outside
		// every measurement window — the baseline pays for query
		// evaluation, not for converting base data it would have held
		// resident anyway.
		rdbs := make([]join.RowDatabase, len(instances))
		for i, in := range instances {
			rdbs[i] = join.NewRowDatabase(in.db)
		}

		// Each engine evaluates every instance inside the measurement
		// window and materialises rows (for the identity wall) outside it.
		type engine struct {
			name string
			eval func() (any, error)
			rows func(res any) [][][]int
		}
		engines := []engine{
			{
				name: "rowref",
				eval: func() (any, error) {
					res := make([]*join.RowRelation, len(instances))
					for i, in := range instances {
						r, err := join.EvaluateRowRef(ctx, in.q, rdbs[i], in.d, 0)
						if err != nil {
							return nil, err
						}
						res[i] = r
					}
					return res, nil
				},
				rows: func(res any) [][][]int {
					rels := res.([]*join.RowRelation)
					rows := make([][][]int, len(rels))
					for i, r := range rels {
						rows[i] = r.Tuples
					}
					return rows
				},
			},
			{name: "scan", eval: columnarEval(ctx, instances, join.EvalOptions{Kernel: join.KernelScan}), rows: columnarRows},
			{name: "indexed", eval: columnarEval(ctx, instances, join.EvalOptions{}), rows: columnarRows},
		}

		n := float64(len(instances))
		var warm [3]memSample
		var reference [][][]int
		for ei, eng := range engines {
			var cold memSample
			best := memSample{ns: -1}
			var lastRes any
			for pass := 0; pass <= rounds; pass++ {
				s, res, err := measurePass(eng.eval)
				if err != nil {
					return nil, fmt.Errorf("bucket %s engine %s: %w", b.name, eng.name, err)
				}
				lastRes = res
				if pass == 0 {
					cold = s
				} else if best.ns < 0 || s.ns < best.ns {
					best = s
				}
			}
			warm[ei] = best

			// Wall 1: byte-identical rows, order included, against the
			// pre-columnar reference.
			rows := eng.rows(lastRes)
			if ei == 0 {
				reference = rows
			} else {
				for i := range rows {
					if !reflect.DeepEqual(rows[i], reference[i]) {
						return nil, fmt.Errorf("bucket %s %s: engine %s diverged from the pre-columnar rowref executor",
							b.name, instances[i].name, eng.name)
					}
				}
			}

			for _, e := range []struct {
				prefix string
				s      memSample
			}{{"mem-", best}, {"mem-cold-", cold}} {
				out.Benchmarks = append(out.Benchmarks, benchEntry{
					Name:        e.prefix + eng.name + "/" + b.name,
					NsPerOp:     e.s.ns / n,
					Ops:         len(instances),
					Solved:      len(instances),
					WallMS:      e.s.ns / 1e6,
					Workers:     1,
					Rounds:      rounds,
					AllocsPerOp: e.s.allocs / n,
					BytesPerOp:  e.s.bytes / n,
					Notes: fmt.Sprintf("gc pause %.2fms over the pass; %s",
						e.s.pause/1e6, engineNote(eng.name)),
				})
			}
			t.AddRow(b.name, len(instances), eng.name,
				fmt.Sprintf("%.1f", best.ns/1e6),
				fmt.Sprintf("%.0f", best.allocs/n),
				fmt.Sprintf("%.0f", best.bytes/n/1024),
				fmt.Sprintf("%.2f", best.pause/1e6),
				fmt.Sprintf("%.2fx", warm[0].allocs/best.allocs))
		}

		// Wall 2: the allocation diet this refactor exists for. The gate
		// binds the default (indexed) kernel; the scan kernel keeps its
		// string-keyed maps on purpose, as an independent implementation
		// for the differential walls, and is reported, not gated.
		idx, ref := warm[2], warm[0]
		if idx.allocs*2 > ref.allocs || idx.bytes*2 > ref.bytes {
			return nil, fmt.Errorf(
				"bucket %s: columnar indexed kernel missed the 2x allocation diet: %.0f allocs/op, %.0f B/op vs rowref %.0f allocs/op, %.0f B/op",
				b.name, idx.allocs/n, idx.bytes/n, ref.allocs/n, ref.bytes/n)
		}
	}

	if hwm, err := peakRSSKB(); err == nil {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name: "mem-peak-rss/suite", Ops: 1, Solved: 1, Workers: 1, Rounds: rounds,
			BytesPerOp: float64(hwm) * 1024,
			Notes:      fmt.Sprintf("process peak RSS (VmHWM) %d KB after the full mem suite", hwm),
		})
		t.Notes = append(t.Notes, fmt.Sprintf("process peak RSS (VmHWM): %d KB", hwm))
	}
	t.Notes = append(t.Notes,
		"identical pre-computed minimum-width plans for all engines; warm = best of -rounds passes after a cold pass",
		"rowref: the frozen pre-columnar executor ([]int-per-tuple storage, string map keys), measured live as the baseline",
		"rows verified byte-identical (order included) across all three engines before anything is written",
		"gate, enforced in-experiment: indexed warm allocs/op and bytes/op ≤ half of rowref, per bucket")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// memSample is one measured pass: wall time plus MemStats deltas.
type memSample struct {
	ns, allocs, bytes, pause float64
}

// columnarEval evaluates every instance with the given options,
// returning the relations unmaterialised.
func columnarEval(ctx context.Context, instances []execInstance, opts join.EvalOptions) func() (any, error) {
	return func() (any, error) {
		res := make([]*join.Relation, len(instances))
		for i, in := range instances {
			r, err := join.EvaluateCtx(ctx, in.q, in.db, in.d, opts)
			if err != nil {
				return nil, err
			}
			res[i] = r
		}
		return res, nil
	}
}

func columnarRows(res any) [][][]int {
	rels := res.([]*join.Relation)
	rows := make([][][]int, len(rels))
	for i, r := range rels {
		rows[i] = r.Rows()
	}
	return rows
}

// measurePass runs one engine pass inside a MemStats window: forced GC
// first (so earlier passes' garbage doesn't leak into the deltas),
// then Mallocs / TotalAlloc / PauseTotalNs deltas around the run.
func measurePass(run func() (any, error)) (memSample, any, error) {
	var s memSample
	runtime.GC()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	start := time.Now()
	res, err := run()
	s.ns = float64(time.Since(start))
	runtime.ReadMemStats(&m1)
	if err != nil {
		return s, nil, err
	}
	s.allocs = float64(m1.Mallocs - m0.Mallocs)
	s.bytes = float64(m1.TotalAlloc - m0.TotalAlloc)
	s.pause = float64(m1.PauseTotalNs - m0.PauseTotalNs)
	return s, res, nil
}

// peakRSSKB reads the process high-water RSS from /proc/self/status.
func peakRSSKB() (int, error) {
	data, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0, err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			break
		}
		return strconv.Atoi(fields[1])
	}
	return 0, fmt.Errorf("VmHWM not found in /proc/self/status")
}

func engineNote(name string) string {
	return map[string]string{
		"rowref":  "pre-columnar baseline: one heap []int per tuple, string-keyed hash maps, serial",
		"scan":    "slice-scan kernel over columnar arena storage (string-keyed maps kept as the independent differential implementation)",
		"indexed": "hash-indexed kernel over columnar arena storage: offset-range CSR indexes, open-addressing dedup, serial",
	}[name]
}
