package main

import (
	"strings"
	"testing"
)

func bench(name string, ns float64) benchEntry {
	return benchEntry{Name: name, NsPerOp: ns, Ops: 1}
}

// TestCompareBenchGate: gated entries fail past the tolerance, ungated
// entries never do, and a gated entry missing from the fresh run is a
// violation (a renamed benchmark must not silently disable the gate).
func TestCompareBenchGate(t *testing.T) {
	baseline := benchFile{Experiment: "query", Benchmarks: []benchEntry{
		bench("query-warm/a", 100),
		bench("query-warm/b", 100),
		bench("query-cold/a", 100),
	}}

	// Within tolerance everywhere: no violations.
	fresh := benchFile{Experiment: "query", Benchmarks: []benchEntry{
		bench("query-warm/a", 120),
		bench("query-warm/b", 90),
		bench("query-cold/a", 500), // ungated: regression ignored
	}}
	report, failures := compareBench(fresh, baseline, []string{"query-warm"}, 0.25, "")
	if len(failures) != 0 {
		t.Fatalf("unexpected violations: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "query-cold/a") {
		t.Fatalf("ungated entries should still be reported:\n%s", report)
	}

	// A gated entry past the tolerance fails.
	fresh.Benchmarks[0] = bench("query-warm/a", 126)
	_, failures = compareBench(fresh, baseline, []string{"query-warm"}, 0.25, "")
	if len(failures) != 1 || !strings.Contains(failures[0], "query-warm/a") {
		t.Fatalf("expected one query-warm/a violation, got %v", failures)
	}

	// A gated entry missing from the fresh run fails too.
	fresh.Benchmarks = fresh.Benchmarks[1:]
	_, failures = compareBench(fresh, baseline, []string{"query-warm"}, 0.5, "")
	if len(failures) != 1 || !strings.Contains(failures[0], "missing") {
		t.Fatalf("expected a missing-entry violation, got %v", failures)
	}

	// Multiple gate prefixes compose.
	_, failures = compareBench(fresh, baseline, []string{"query-warm", "query-cold"}, 0.25, "")
	if len(failures) != 2 {
		t.Fatalf("expected 2 violations with the cold gate on, got %v", failures)
	}
}

// TestCompareBenchCalibration: on a uniformly slower machine every raw
// ratio exceeds the tolerance, but dividing out the median ratio of the
// calibration entries (machine speed) keeps the gate quiet — while a
// genuine regression on top of the slowdown still fails.
func TestCompareBenchCalibration(t *testing.T) {
	baseline := benchFile{Experiment: "query", Benchmarks: []benchEntry{
		bench("query-cold/a", 100),
		bench("query-cold/b", 100),
		bench("query-cold/c", 100),
		bench("query-warm/a", 100),
		bench("query-warm/b", 100),
	}}
	// The whole run is 2x slower (a slow CI runner), warm unchanged
	// relative to cold.
	fresh := benchFile{Experiment: "query", Benchmarks: []benchEntry{
		bench("query-cold/a", 190),
		bench("query-cold/b", 200),
		bench("query-cold/c", 210),
		bench("query-warm/a", 200),
		bench("query-warm/b", 210),
	}}
	report, failures := compareBench(fresh, baseline, []string{"query-warm"}, 0.25, "")
	if len(failures) != 2 {
		t.Fatalf("uncalibrated: want 2 hardware-induced violations, got %v\n%s", failures, report)
	}
	report, failures = compareBench(fresh, baseline, []string{"query-warm"}, 0.25, "query-cold")
	if len(failures) != 0 {
		t.Fatalf("calibrated: hardware slowdown must not trip the gate: %v\n%s", failures, report)
	}
	if !strings.Contains(report, "calibration") {
		t.Fatalf("report should state the calibration factor:\n%s", report)
	}

	// A real 2x regression of one warm entry on the slow machine: only
	// that entry fails after calibration.
	fresh.Benchmarks[4] = bench("query-warm/b", 420)
	_, failures = compareBench(fresh, baseline, []string{"query-warm"}, 0.25, "query-cold")
	if len(failures) != 1 || !strings.Contains(failures[0], "query-warm/b") {
		t.Fatalf("calibrated: want the real regression only, got %v", failures)
	}

	// A calibration prefix matching nothing must fail the gate loudly,
	// not silently fall back to raw cross-machine timings.
	_, failures = compareBench(fresh, baseline, []string{"query-warm/a"}, 0.25, "no-such-prefix")
	found := false
	for _, f := range failures {
		if strings.Contains(f, "matched no entries") {
			found = true
		}
	}
	if !found {
		t.Fatalf("want a loud calibration-miss violation, got %v", failures)
	}
}
