package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/join"
)

// execInstance is one query+database+plan triple of the executor
// benchmark.
type execInstance struct {
	name string
	q    join.Query
	db   join.Database
	d    *htd.Decomposition
}

// execExperiment measures the three executor configurations per
// workload bucket over identical pre-computed plans:
//
//   - serial: the legacy slice-scan kernel (PR 4's executor) — every
//     semijoin re-scans tuple slices with formatted string keys;
//   - indexed: the hash-indexed kernel, serial — build-once indexes on
//     the shared variables of each join-tree edge;
//   - parallel: the indexed kernel with a worker pool — sibling
//     subtrees and large final-join probe loops run concurrently.
//
// Plans are decomposed once up front, so the numbers isolate execution;
// every kernel's rows are checked byte-identical before anything is
// reported. With -benchjson the measurements are written as the
// benchmark JSON artifact (BENCH_PR5.json in CI).
func execExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	type bucket struct {
		name string
		gen  func() []execInstance
	}
	// Domains are sized so the per-step join expansion factor stays ≤ 1
	// (answers bounded near the relation size) — the cost is semijoin
	// and probe volume, not an exploding output.
	buckets := []bucket{
		{"chain 3 atoms", func() []execInstance { return chainInstances(3, 8, 5000, 5000) }},
		{"star 6 atoms", func() []execInstance { return starInstances(6, 6, 800, 400) }},
		// Cycle bags join non-adjacent λ edges (a cross product before
		// projection), so the relation size is kept modest.
		{"cycle 6 atoms", func() []execInstance { return cycleInstances(6, 6, 800, 400) }},
		{"chain 8 atoms", func() []execInstance { return chainInstances(8, 5, 4000, 8000) }},
	}

	parallelism := cfg.Workers
	if parallelism < 4 {
		// Exercise the worker pool even on small hosts; oversubscription
		// is part of what the differential wall must survive.
		parallelism = 4
	}
	kernels := []struct {
		name string
		opts join.EvalOptions
	}{
		{"serial", join.EvalOptions{Kernel: join.KernelScan}},
		{"indexed", join.EvalOptions{}},
		{"parallel", join.EvalOptions{Parallelism: parallelism}},
	}

	out := benchFile{
		Experiment:  "exec",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Executor: serial slice-scan vs indexed vs parallel indexed Yannakakis",
		Headers: []string{"Bucket", "N", "rows",
			"serial-ms", "indexed-ms", "parallel-ms", "idx-speedup", "par-speedup"},
	}

	var totalMS [3]float64
	totalN := 0
	for _, b := range buckets {
		instances := b.gen()
		for i := range instances {
			h, err := instances[i].q.Hypergraph()
			if err != nil {
				return nil, fmt.Errorf("bucket %s: %w", b.name, err)
			}
			_, d, ok, err := htd.OptimalWidth(ctx, h, cfg.KMax)
			if err != nil || !ok {
				return nil, fmt.Errorf("bucket %s %s: no plan (ok=%v err=%v)", b.name, instances[i].name, ok, err)
			}
			instances[i].d = d
		}

		var ms [3]float64
		var rows int64
		var reference []*join.Relation
		for ki, k := range kernels {
			start := time.Now()
			var kernelRows int64
			results := make([]*join.Relation, len(instances))
			for i, in := range instances {
				res, err := join.EvaluateCtx(ctx, in.q, in.db, in.d, k.opts)
				if err != nil {
					return nil, fmt.Errorf("bucket %s %s kernel %s: %w", b.name, in.name, k.name, err)
				}
				results[i] = res
				kernelRows += int64(res.Size())
			}
			ms[ki] = float64(time.Since(start)) / float64(time.Millisecond)
			if ki == 0 {
				reference = results
				rows = kernelRows
			} else {
				// The wall: every kernel must reproduce the scan kernel's
				// answer byte for byte, tuple order included.
				for i := range results {
					if !reflect.DeepEqual(results[i].Attrs, reference[i].Attrs) ||
						!reflect.DeepEqual(results[i].Rows(), reference[i].Rows()) {
						return nil, fmt.Errorf("bucket %s %s: kernel %s diverged from the scan kernel",
							b.name, instances[i].name, k.name)
					}
				}
			}
		}

		n := len(instances)
		totalN += n
		for ki := range kernels {
			totalMS[ki] += ms[ki]
			notes := map[string]string{
				"serial":  "legacy slice-scan kernel (PR 4 executor): per-op string keys, serial passes",
				"indexed": "hash-indexed kernel, serial: build-once byte-key indexes per join-tree edge",
				"parallel": fmt.Sprintf("indexed kernel, %d workers: concurrent sibling subtrees + partitioned final joins; %.2fx vs serial",
					parallelism, ms[0]/ms[2]),
			}[kernels[ki].name]
			out.Benchmarks = append(out.Benchmarks, benchEntry{
				Name:    "exec-" + kernels[ki].name + "/" + b.name,
				NsPerOp: ms[ki] * 1e6 / float64(n),
				Ops:     n, Solved: n, WallMS: ms[ki],
				Workers: parallelism, Rounds: 1,
				Notes: notes,
			})
		}
		t.AddRow(b.name, n, rows,
			fmt.Sprintf("%.1f", ms[0]), fmt.Sprintf("%.1f", ms[1]), fmt.Sprintf("%.1f", ms[2]),
			fmt.Sprintf("%.2fx", ms[0]/ms[1]), fmt.Sprintf("%.2fx", ms[0]/ms[2]))
	}

	if totalN > 0 && totalMS[2] > 0 {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name:    "exec-speedup/suite",
			NsPerOp: totalMS[2] * 1e6 / float64(totalN),
			Ops:     totalN, Solved: totalN, WallMS: totalMS[2],
			Workers: parallelism, Rounds: 1,
			Notes: fmt.Sprintf("suite exec time: serial %.1fms, indexed %.1fms, parallel %.1fms = %.2fx indexed, %.2fx parallel over serial",
				totalMS[0], totalMS[1], totalMS[2], totalMS[0]/totalMS[1], totalMS[0]/totalMS[2]),
		})
		t.AddRow("suite total", totalN, "-",
			fmt.Sprintf("%.1f", totalMS[0]), fmt.Sprintf("%.1f", totalMS[1]), fmt.Sprintf("%.1f", totalMS[2]),
			fmt.Sprintf("%.2fx", totalMS[0]/totalMS[1]), fmt.Sprintf("%.2fx", totalMS[0]/totalMS[2]))
	}
	t.Notes = append(t.Notes,
		"identical pre-computed minimum-width plans for all kernels; times are execution only",
		"serial: the pre-PR5 slice-scan executor; indexed: hash-index kernel; parallel: indexed + worker pool",
		"rows are verified byte-identical across all three kernels before anything is reported")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// chainInstances builds path queries R0(x0,x1) ⋈ … ⋈ Rk-1(xk-1,xk):
// acyclic width-1 plans whose cost is pure semijoin+join volume.
func chainInstances(atoms, n, tuples, domain int) []execInstance {
	out := make([]execInstance, n)
	for i := range out {
		r := rand.New(rand.NewSource(int64(7000 + 100*atoms + i)))
		var q join.Query
		db := join.Database{}
		for a := 0; a < atoms; a++ {
			name := "R" + strconv.Itoa(a)
			rel := join.NewRelation("a", "b")
			for j := 0; j < tuples; j++ {
				rel.Add(r.Intn(domain), r.Intn(domain))
			}
			db[name] = rel
			q.Atoms = append(q.Atoms, join.Atom{Relation: name,
				Vars: []string{"x" + strconv.Itoa(a), "x" + strconv.Itoa(a+1)}})
		}
		out[i] = execInstance{name: fmt.Sprintf("chain%d-%d", atoms, i), q: q, db: db}
	}
	return out
}

// starInstances builds star queries C(x0) ⋈ A1(x0,y1) ⋈ … ⋈ Ak(x0,yk):
// the root bag has k sibling subtrees, the shape that exercises the
// parallel passes.
func starInstances(arms, n, centers, domain int) []execInstance {
	out := make([]execInstance, n)
	for i := range out {
		r := rand.New(rand.NewSource(int64(8000 + 100*arms + i)))
		var q join.Query
		db := join.Database{}
		c := join.NewRelation("a")
		for j := 0; j < centers; j++ {
			c.Add(j)
		}
		db["C"] = c
		q.Atoms = append(q.Atoms, join.Atom{Relation: "C", Vars: []string{"x0"}})
		for a := 1; a <= arms; a++ {
			name := "A" + strconv.Itoa(a)
			rel := join.NewRelation("a", "b")
			// ~2 matches per centre, so the answer grows with the arm
			// count without exploding.
			for j := 0; j < centers; j++ {
				rel.Add(j, r.Intn(domain))
				rel.Add(j, r.Intn(domain))
			}
			db[name] = rel
			q.Atoms = append(q.Atoms, join.Atom{Relation: name,
				Vars: []string{"x0", "y" + strconv.Itoa(a)}})
		}
		out[i] = execInstance{name: fmt.Sprintf("star%d-%d", arms, i), q: q, db: db}
	}
	return out
}

// cycleInstances builds cycle queries R0(x0,x1) ⋈ … ⋈ Rk-1(xk-1,x0):
// cyclic, width-2 plans whose bags join two relations each.
func cycleInstances(atoms, n, tuples, domain int) []execInstance {
	out := make([]execInstance, n)
	for i := range out {
		r := rand.New(rand.NewSource(int64(9000 + 100*atoms + i)))
		var q join.Query
		db := join.Database{}
		for a := 0; a < atoms; a++ {
			name := "R" + strconv.Itoa(a)
			rel := join.NewRelation("a", "b")
			for j := 0; j < tuples; j++ {
				rel.Add(r.Intn(domain), r.Intn(domain))
			}
			db[name] = rel
			q.Atoms = append(q.Atoms, join.Atom{Relation: name,
				Vars: []string{"x" + strconv.Itoa(a), "x" + strconv.Itoa((a+1)%atoms)}})
		}
		out[i] = execInstance{name: fmt.Sprintf("cycle%d-%d", atoms, i), q: q, db: db}
	}
	return out
}
