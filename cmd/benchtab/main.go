// Command benchtab regenerates the tables and figures of the paper's
// evaluation (§5 and Appendix D) over the HyperBench-sim suite, at a
// configurable scale and timeout. `go test -bench=.` runs the same
// experiments at fixed bench scale; benchtab is the knob-turning tool.
//
// Usage:
//
//	benchtab -experiment all -timeout 2s -scale 2 -workers 8
//	benchtab -experiment figure3 -csv scatter.csv
//
// Experiments: table1 table2 table3 table4 table5 figure1 figure3
// ablation depth ghd race store query exec agg mem persist incr all
//
// The race experiment compares the serial k = 1..kmax width ladder
// against the optimal-width racing service pipeline; the store
// experiment measures the unified decomposition store (cold-vs-warm
// repeat traffic and request coalescing); the query experiment drives
// the end-to-end conjunctive-query pipeline (Yannakakis over
// store-cached decompositions) with cold-plan vs warm-plan traffic;
// the exec experiment races the three executor kernels (legacy
// slice-scan, hash-indexed, parallel indexed) over identical plans;
// the agg experiment compares aggregate pushdown against
// materialise-then-fold on high-output star queries (BENCH_PR6.json);
// the mem experiment is the memory-diet harness — columnar kernels vs
// the frozen pre-columnar rowref executor, recording allocs/op,
// bytes/op, GC pauses, and peak RSS, with byte-identity and a 2x
// allocation-reduction wall enforced in-experiment (BENCH_PR8.json);
// the persist experiment measures the disk-backed store tier — cold
// solve-and-append traffic vs a same-process warm pass vs a full
// process restart over the same -store-dir, with zero solver runs
// enforced on the restarted service (BENCH_PR9.json);
// the incr experiment measures incremental dataset maintenance — per
// delta batch, O(delta) layered index maintenance vs a full index
// rebuild vs a full re-upload, across delta sizes 1/100/10k, plus the
// unchanged-data fast paths (warm dataset query with zero index
// builds, parse-cache coalescing), with byte-identity and a
// maintenance-beats-rebuild wall enforced in-experiment
// (BENCH_PR10.json).
// With -benchjson any of them writes its measurements as a JSON
// benchmark artifact (BENCH_PR5.json in CI) so the perf trajectory is
// tracked across PRs.
//
// With -compare the fresh -benchjson artifact is additionally diffed
// against a committed baseline and the process exits non-zero when any
// gated entry (-gate prefixes, default the warm-plan suite) regressed
// its ns/op by more than -tolerance — the CI bench-regression gate:
//
//	benchtab -experiment query -benchjson fresh.json \
//	    -compare BENCH_PR4.json -tolerance 0.25 -calibrate query-cold
//
// -calibrate divides the median fresh/baseline ratio of the named
// entries (machine speed) out of every gated ratio, so a committed
// baseline from one host gates code, not hardware, on another.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"repro/internal/harness"
	"repro/internal/hyperbench"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "which experiment to run")
		timeout    = flag.Duration("timeout", 500*time.Millisecond, "per-(instance,width) budget")
		scale      = flag.Int("scale", 1, "suite scale factor")
		seed       = flag.Int64("seed", 2022, "suite seed")
		kmax       = flag.Int("kmax", 6, "maximum width to try")
		workers    = flag.Int("workers", runtime.GOMAXPROCS(0), "workers for parallel methods")
		csvPath    = flag.String("csv", "", "write figure3 scatter CSV here")
		benchJSON  = flag.String("benchjson", "", "write race-experiment benchmark JSON here")
		rounds     = flag.Int("rounds", 3, "traffic rounds for the race experiment")
		quiet      = flag.Bool("quiet", false, "suppress progress output")
		compare    = flag.String("compare", "", "baseline benchmark JSON to gate the fresh -benchjson run against")
		tolerance  = flag.Float64("tolerance", 0.25, "max fractional ns/op regression for gated entries")
		gate       = flag.String("gate", "query-warmup", "comma-separated entry-name prefixes the -compare gate enforces (default: the warm-plan suite aggregate; per-bucket entries are sub-ms and too noisy to gate)")
		calibrate  = flag.String("calibrate", "", "entry-name prefix whose median fresh/baseline ratio is divided out as machine speed (e.g. query-cold)")
	)
	flag.Parse()

	cfg := harness.Config{
		Suite:   hyperbench.Suite(hyperbench.Config{Scale: *scale, Seed: *seed}),
		Timeout: *timeout,
		KMax:    *kmax,
		Workers: *workers,
	}
	if !*quiet {
		cfg.Progress = func(done, total int) {
			if done%25 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "\r%d/%d runs", done, total)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}
	ctx := context.Background()

	run := func(name string) error {
		fmt.Printf("\n### %s ###\n\n", name)
		switch name {
		case "table1":
			tab, results := harness.Table1(ctx, cfg)
			if err := firstErr(results); err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "table2":
			tab, results := harness.Table2(ctx, cfg)
			if err := firstErr(results); err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "table3":
			tab, results := harness.Table3(ctx, cfg)
			if err := firstErr(results); err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "table4":
			_, results := harness.Table3(ctx, cfg)
			if err := firstErr(results); err != nil {
				return err
			}
			fmt.Print(harness.Table4(results, len(cfg.Suite), cfg.KMax).Render())
		case "table5":
			tab, results := harness.Table5(ctx, cfg)
			if err := firstErr(results); err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "figure1":
			cores := []int{1, 2, 3, 4, 5, 6}
			if runtime.GOMAXPROCS(0) < 6 {
				cores = []int{1, 2}
			}
			tab, _ := harness.Figure1(ctx, cfg, cores)
			fmt.Print(tab.Render())
		case "figure3":
			r := harness.Runner{Timeout: cfg.Timeout, KMax: cfg.KMax}
			methods := []harness.Method{
				harness.MethodDetK(), harness.MethodOpt(),
				harness.MethodLogKHybrid(cfg.Workers, 2 /* WeightedCount */, 40),
			}
			results := r.RunAll(ctx, methods, cfg.Suite, cfg.Progress)
			if err := firstErr(results); err != nil {
				return err
			}
			csv, tab := harness.Figure3(results)
			fmt.Print(tab.Render())
			if *csvPath != "" {
				if err := os.WriteFile(*csvPath, []byte(csv), 0o644); err != nil {
					return err
				}
				fmt.Printf("scatter data written to %s\n", *csvPath)
			}
		case "ablation":
			var medium []hyperbench.Instance
			for _, in := range cfg.Suite {
				if in.KnownHW > 0 && in.Edges() > 10 && in.Edges() <= 60 {
					medium = append(medium, in)
				}
			}
			acfg := cfg
			acfg.Suite = medium
			fmt.Print(harness.AblationExperiment(ctx, acfg).Render())
		case "race":
			tab, err := raceExperiment(ctx, cfg, *rounds, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "store":
			tab, err := storeExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "query":
			tab, err := queryExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "exec":
			tab, err := execExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "agg":
			tab, err := aggExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "mem":
			tab, err := memExperiment(ctx, cfg, *rounds, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "persist":
			tab, err := persistExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "incr":
			tab, err := incrExperiment(ctx, cfg, *benchJSON)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		case "depth":
			fmt.Print(harness.DepthExperiment(ctx, []int{16, 32, 64, 128, 256, 512}).Render())
		case "ghd":
			var small []hyperbench.Instance
			for _, in := range cfg.Suite {
				if in.Edges() <= 30 {
					small = append(small, in)
				}
			}
			gcfg := cfg
			gcfg.Suite = small
			tab, err := harness.GHDComparison(ctx, gcfg)
			if err != nil {
				return err
			}
			fmt.Print(tab.Render())
		default:
			return fmt.Errorf("unknown experiment %q", name)
		}
		return nil
	}

	names := []string{*experiment}
	if *experiment == "all" {
		names = []string{"table1", "table2", "table3", "table4", "table5",
			"figure1", "figure3", "ablation", "depth", "ghd", "race", "store", "query", "exec", "agg", "mem", "persist", "incr"}
	}
	for _, n := range names {
		if err := run(strings.TrimSpace(n)); err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(1)
		}
	}

	if *compare != "" {
		if *benchJSON == "" {
			fmt.Fprintln(os.Stderr, "benchtab: -compare requires -benchjson (the fresh run to gate)")
			os.Exit(2)
		}
		fresh, err := readBenchJSON(*benchJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(2)
		}
		baseline, err := readBenchJSON(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchtab:", err)
			os.Exit(2)
		}
		report, failures := compareBench(fresh, baseline, strings.Split(*gate, ","), *tolerance, *calibrate)
		fmt.Print(report)
		if len(failures) > 0 {
			fmt.Fprintf(os.Stderr, "benchtab: bench-regression gate FAILED (%d violations):\n", len(failures))
			for _, f := range failures {
				fmt.Fprintln(os.Stderr, "  -", f)
			}
			os.Exit(1)
		}
		fmt.Println("bench-regression gate passed")
	}
}

func firstErr(results []harness.Result) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("%s on %s: %w", r.Method, r.Instance.Name, r.Err)
		}
	}
	return nil
}
