package main

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/query"
)

// queryExperiment measures the end-to-end conjunctive-query pipeline,
// per query-size bucket: every seeded random CQ+database is answered
// once against a fresh service (cold pass: the plan is computed by the
// racing solver) and then the identical traffic is replayed (warm pass:
// every plan is a store cache hit, zero solver runs). The cold/warm
// latency split is the headline number for the per-query payoff of the
// decomposition store. With -benchjson the measurements are written as
// the benchmark JSON artifact (BENCH_PR4.json in CI).
func queryExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	type bucket struct {
		name  string
		n     int
		gen   query.GenConfig
		seed0 int64
	}
	buckets := []bucket{
		{"2-4 atoms", 30, query.GenConfig{MaxAtoms: 4}, 1000},
		{"5-7 atoms", 20, query.GenConfig{MaxAtoms: 7, MaxVars: 8, MaxTuples: 16}, 2000},
		{"8-10 atoms", 10, query.GenConfig{MaxAtoms: 10, MaxVars: 10, MaxArity: 2, MaxTuples: 12}, 3000},
	}

	out := benchFile{
		Experiment:  "query",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Query pipeline: cold-plan vs warm-plan latency (Yannakakis over store-cached HDs)",
		Headers: []string{"Bucket", "N",
			"cold-ms", "cold-plan-ms", "warm-ms", "warm-plan-ms", "plan-hits", "rows", "warmup"},
	}

	var totalCold, totalWarm float64
	var totalN int
	for _, b := range buckets {
		type instance struct {
			q  htd.CQ
			db htd.Database
		}
		instances := make([]instance, b.n)
		for i := range instances {
			r := rand.New(rand.NewSource(b.seed0 + int64(i)))
			instances[i].q, instances[i].db = query.RandomInstance(r, b.gen)
		}

		svc := htd.NewService(htd.ServiceConfig{
			TokenBudget:    cfg.Workers,
			MaxConcurrent:  4,
			MaxQueue:       4*b.n + 16,
			DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
			MemoMaxGraphs:  2 * b.n,
		})
		planner := htd.NewQueryPlanner(svc)

		// One pass submits every query concurrently (bounded by the
		// service's own admission control via MaxConcurrent workers) and
		// reports wall time, summed plan time, and total answer rows.
		pass := func() (wallMS, planMS float64, rows int64, err error) {
			var mu sync.Mutex
			var wg sync.WaitGroup
			sem := make(chan struct{}, 4)
			start := time.Now()
			for _, in := range instances {
				wg.Add(1)
				go func(in instance) {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					res, qerr := planner.Eval(ctx, htd.QueryRequest{
						Query: in.q, DB: in.db, Workers: cfg.Workers,
					})
					mu.Lock()
					defer mu.Unlock()
					if qerr != nil {
						if err == nil {
							err = qerr
						}
						return
					}
					planMS += float64(res.PlanElapsed) / float64(time.Millisecond)
					rows += int64(res.Rows.Size())
				}(in)
			}
			wg.Wait()
			wallMS = float64(time.Since(start)) / float64(time.Millisecond)
			return wallMS, planMS, rows, err
		}

		coldMS, coldPlanMS, coldRows, err := pass()
		stCold := planner.Stats()
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s cold pass: %w", b.name, err)
		}
		// Warm passes are milliseconds of wall time, so one pass is at
		// the mercy of scheduling noise; the bench-regression gate
		// compares these numbers across runs, so measure best-of-3.
		const warmPasses = 3
		var warmMS, warmPlanMS float64
		for p := 0; p < warmPasses; p++ {
			ms, planMS, warmRows, werr := pass()
			if werr != nil {
				svc.Close()
				return nil, fmt.Errorf("bucket %s warm pass: %w", b.name, werr)
			}
			if warmRows != coldRows {
				svc.Close()
				return nil, fmt.Errorf("bucket %s: warm pass returned %d rows, cold pass %d", b.name, warmRows, coldRows)
			}
			if p == 0 || ms < warmMS {
				warmMS, warmPlanMS = ms, planMS
			}
		}
		// Warm-pass hits are the delta over the cold pass (structurally
		// identical instances can already hit within the cold pass).
		warmHits := planner.Stats().PlanCacheHits - stCold.PlanCacheHits
		sst := svc.Stats()
		svc.Close()
		if int(warmHits) < warmPasses*b.n {
			return nil, fmt.Errorf("bucket %s: only %d plan-cache hits for %d repeated queries", b.name, warmHits, warmPasses*b.n)
		}
		if sst.SolverRuns > int64(b.n) {
			return nil, fmt.Errorf("bucket %s: %d solver runs for %d distinct queries", b.name, sst.SolverRuns, b.n)
		}

		warmup := coldMS / warmMS
		totalCold += coldMS
		totalWarm += warmMS
		totalN += b.n
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "query-cold/" + b.name,
				NsPerOp: coldMS * 1e6 / float64(b.n),
				Ops:     b.n, Solved: b.n, WallMS: coldMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("first pass: plans computed by the racing solver; %.1fms plan time summed over %d concurrent queries, wall %.1fms", coldPlanMS, b.n, coldMS),
			},
			benchEntry{
				Name:    "query-warm/" + b.name,
				NsPerOp: warmMS * 1e6 / float64(b.n),
				Ops:     b.n, Solved: b.n, WallMS: warmMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("identical repeat traffic, best of %d passes: %d plan-cache hits, %d solver runs total; %.1fx faster than cold", warmPasses, warmHits, sst.SolverRuns, warmup),
			})
		t.AddRow(b.name, b.n,
			fmt.Sprintf("%.1f", coldMS), fmt.Sprintf("%.1f", coldPlanMS),
			fmt.Sprintf("%.2f", warmMS), fmt.Sprintf("%.2f", warmPlanMS),
			warmHits, coldRows,
			fmt.Sprintf("%.1fx", warmup))
	}
	if totalN > 0 && totalWarm > 0 {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name:    "query-warmup/suite",
			NsPerOp: totalWarm * 1e6 / float64(totalN),
			Ops:     totalN, Solved: totalN, WallMS: totalWarm,
			Workers: cfg.Workers, Rounds: 1,
			Notes: fmt.Sprintf("whole workload: cold %.1fms vs warm %.2fms = %.1fx", totalCold, totalWarm, totalCold/totalWarm),
		})
		t.AddRow("suite total", totalN,
			fmt.Sprintf("%.1f", totalCold), "-",
			fmt.Sprintf("%.2f", totalWarm), "-", "-", "-",
			fmt.Sprintf("%.1fx", totalCold/totalWarm))
	}
	t.Notes = append(t.Notes,
		"cold: seeded random CQs answered via htd.EvalQuery against an empty store (plan = racing optimal-width solve)",
		"warm: the identical queries again (best of 3 passes); every plan is a positive store hit (zero solver runs)",
		"plan-ms columns are per-query plan times summed over concurrent queries; *-ms columns are pass wall time",
		"rows are identical across passes; execution (Yannakakis over the bags) runs in full in both")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}
