package main

import (
	"context"
	"fmt"
	"os"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/hyperbench"
)

// persistExperiment measures what the disk-backed store tier costs and
// buys, per HyperBench-sim size bucket:
//
//   - cold: every instance submitted as a ModeOptimal job against a
//     fresh disk-backed service (per-append fsync — the strictest
//     durability setting, so the cost measured is the worst case).
//   - warm: the identical traffic against the same process — memory-
//     front hits, the disk tier untouched on the read path.
//   - reopen: the service is closed, a NEW service is opened on the
//     same directory (a simulated process restart — the log replays,
//     the memory front starts empty), and the traffic replayed again.
//     The experiment fails unless the reopened service answers with
//     ZERO solver runs: warm restarts must be hits, not re-solves.
//
// The headline ratio is cold vs reopen: what a restart costs with the
// disk tier versus re-solving the world (which is what cold measures).
// With -benchjson the measurements are the BENCH_PR9.json artifact.
func persistExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	type bucketRun struct {
		bucket    string
		instances []hyperbench.Instance
	}
	var runs []bucketRun
	for _, bucket := range []string{"|E| <= 10", "10 < |E| <= 50"} {
		var ins []hyperbench.Instance
		for _, in := range cfg.Suite {
			// Known moderate widths only, so every pass terminates at
			// every timeout setting and solved counts are comparable.
			if hyperbench.SizeBucket(in.Edges()) == bucket && in.KnownHW >= 1 && in.KnownHW <= 4 {
				ins = append(ins, in)
			}
		}
		if len(ins) > 0 {
			runs = append(runs, bucketRun{bucket, ins})
		}
	}

	out := benchFile{
		Experiment:  "persist",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Persist: disk-backed store tier, cold vs warm vs restart",
		Headers: []string{"Bucket", "N",
			"cold-ms", "solved", "warm-ms", "reopen-ms", "restart-speedup",
			"disk-KiB", "appends"},
	}

	openDisk := func(dir string, instances int) (*htd.Service, error) {
		return htd.OpenService(htd.ServiceConfig{
			TokenBudget:    cfg.Workers,
			MaxConcurrent:  4,
			MaxQueue:       4*instances + 16,
			DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
			MemoMaxGraphs:  2 * instances,
			StoreDir:       dir,
			StoreFsync:     0, // fsync every append: worst-case durability cost
		})
	}

	var totalCold, totalWarm, totalReopen float64
	var totalN, totalSolved int
	for _, br := range runs {
		dir, err := os.MkdirTemp("", "benchtab-persist-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)

		svc, err := openDisk(dir, len(br.instances))
		if err != nil {
			return nil, err
		}
		coldMS, coldSolved, err := submitAll(ctx, svc, br.instances, cfg)
		if err != nil {
			svc.Close()
			return nil, err
		}
		warmMS, warmSolved, err := submitAll(ctx, svc, br.instances, cfg)
		diskStats := svc.Store().Stats().Disk
		if cerr := svc.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if warmSolved != coldSolved {
			return nil, fmt.Errorf("bucket %s: warm pass solved %d, cold pass %d", br.bucket, warmSolved, coldSolved)
		}

		// The simulated restart: a brand-new service over the same
		// directory. The memory front is empty; everything comes off the
		// replayed log.
		svc, err = openDisk(dir, len(br.instances))
		if err != nil {
			return nil, fmt.Errorf("bucket %s: reopen: %w", br.bucket, err)
		}
		reopenMS, reopenSolved, err := submitAll(ctx, svc, br.instances, cfg)
		st := svc.Stats()
		if cerr := svc.Close(); err == nil && cerr != nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		if reopenSolved != coldSolved {
			return nil, fmt.Errorf("bucket %s: reopen pass solved %d, cold pass %d", br.bucket, reopenSolved, coldSolved)
		}
		// The wall: a warm restart that runs even one solver is a broken
		// disk tier, however fast it was.
		if st.SolverRuns != 0 {
			return nil, fmt.Errorf("bucket %s: reopened service ran %d solvers, want 0", br.bucket, st.SolverRuns)
		}

		n := len(br.instances)
		totalCold += coldMS
		totalWarm += warmMS
		totalReopen += reopenMS
		totalN += n
		totalSolved += coldSolved
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "persist-cold/" + br.bucket,
				NsPerOp: coldMS * 1e6 / float64(n),
				Ops:     n, Solved: coldSolved, WallMS: coldMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: "first pass: empty disk store, every job solves + appends (fsync per append)",
			},
			benchEntry{
				Name:    "persist-warm/" + br.bucket,
				NsPerOp: warmMS * 1e6 / float64(n),
				Ops:     n, Solved: warmSolved, WallMS: warmMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("same-process repeat: memory-front hits over the disk tier (%d appends, %d KiB on disk)",
					diskStats.Appends, diskStats.Bytes/1024),
			},
			benchEntry{
				Name:    "persist-reopen/" + br.bucket,
				NsPerOp: reopenMS * 1e6 / float64(n),
				Ops:     n, Solved: reopenSolved, WallMS: reopenMS,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("after process restart: log replayed, 0 solver runs, %d positive hits; %.1fx faster than cold",
					st.PositiveHits, coldMS/reopenMS),
			})
		t.AddRow(br.bucket, n,
			fmt.Sprintf("%.1f", coldMS), coldSolved,
			fmt.Sprintf("%.2f", warmMS),
			fmt.Sprintf("%.2f", reopenMS),
			fmt.Sprintf("%.0fx", coldMS/reopenMS),
			diskStats.Bytes/1024,
			diskStats.Appends)
	}
	if totalN > 0 && totalReopen > 0 {
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "persist-warm/suite",
				NsPerOp: totalWarm * 1e6 / float64(totalN),
				Ops:     totalN, Solved: totalSolved, WallMS: totalWarm,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("whole suite, same process: cold %.1fms vs warm %.2fms", totalCold, totalWarm),
			},
			benchEntry{
				Name:    "persist-reopen/suite",
				NsPerOp: totalReopen * 1e6 / float64(totalN),
				Ops:     totalN, Solved: totalSolved, WallMS: totalReopen,
				Workers: cfg.Workers, Rounds: 1,
				Notes: fmt.Sprintf("whole suite across a restart: cold %.1fms vs reopen %.2fms = %.1fx, zero solver runs",
					totalCold, totalReopen, totalCold/totalReopen),
			})
		t.AddRow("suite total", totalN,
			fmt.Sprintf("%.1f", totalCold), totalSolved,
			fmt.Sprintf("%.2f", totalWarm),
			fmt.Sprintf("%.2f", totalReopen),
			fmt.Sprintf("%.0fx", totalCold/totalReopen), "-", "-")
	}
	t.Notes = append(t.Notes,
		"cold: ModeOptimal jobs against an empty disk-backed store, fsync on every append",
		"warm: identical traffic, same process (memory-front hits)",
		"reopen: identical traffic after closing and reopening the service on the same directory — a process restart; zero solver runs enforced",
		"restart-speedup: cold-ms / reopen-ms, what the disk tier saves a restarted process")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}
