package main

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/hyperbench"
	"repro/internal/logk"
)

// benchEntry is one measurement in the benchmark JSON artifact. The
// mem experiment additionally records allocation counters; those are
// machine-independent (the allocator does the same work everywhere),
// so compareBench gates them without speed calibration.
type benchEntry struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	Ops         int     `json:"ops"`
	Solved      int     `json:"solved"`
	WallMS      float64 `json:"wall_ms"`
	Workers     int     `json:"workers"`
	Rounds      int     `json:"rounds"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	Notes       string  `json:"notes,omitempty"`
}

// benchFile is the benchmark-artifact schema (BENCH_PR3.json): a flat
// benchmark list plus enough context to compare runs across machines.
type benchFile struct {
	Experiment  string       `json:"experiment"`
	GeneratedBy string       `json:"generated_by"`
	KMax        int          `json:"kmax"`
	Timestamp   string       `json:"timestamp"`
	Benchmarks  []benchEntry `json:"benchmarks"`
}

// raceExperiment compares, per HyperBench-sim size bucket, the serial
// width ladder (the pre-racer pipeline: decide k = 1, 2, … with the
// hybrid solver until the first success, one instance after another)
// against the racing service pipeline (ModeOptimal jobs submitted
// concurrently to an htd.Service, sharing the worker budget, the
// negative-memo cache, and the bounds cache). Both sides run `rounds`
// passes over the bucket, modelling repeat traffic: the service banks
// refutations as width bounds, so later rounds start from tight bounds
// while the serial ladder re-proves everything from scratch.
func raceExperiment(ctx context.Context, cfg harness.Config, rounds int, jsonPath string) (*harness.Table, error) {
	if rounds < 1 {
		rounds = 1
	}
	type bucketRun struct {
		bucket    string
		instances []hyperbench.Instance
	}
	var runs []bucketRun
	for _, bucket := range []string{"|E| <= 10", "10 < |E| <= 50"} {
		var ins []hyperbench.Instance
		for _, in := range cfg.Suite {
			// Known moderate widths only, so the serial side terminates
			// at every timeout setting and solved counts are comparable.
			if hyperbench.SizeBucket(in.Edges()) == bucket && in.KnownHW >= 1 && in.KnownHW <= 4 {
				ins = append(ins, in)
			}
		}
		if len(ins) > 0 {
			runs = append(runs, bucketRun{bucket, ins})
		}
	}

	out := benchFile{
		Experiment:  "race",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Race: serial width ladder vs racing service pipeline",
		Headers: []string{"Bucket", "N", "Rounds",
			"serial-ms", "serial-solved", "race-ms", "race-solved", "speedup"},
	}

	for _, br := range runs {
		serialMS, serialSolved, err := serialLadder(ctx, br.instances, cfg, rounds)
		if err != nil {
			return nil, err
		}
		raceMS, raceSolved, err := raceService(ctx, br.instances, cfg, rounds)
		if err != nil {
			return nil, err
		}
		ops := rounds * len(br.instances)
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "serial-ladder/" + br.bucket,
				NsPerOp: serialMS * 1e6 / float64(ops),
				Ops:     ops, Solved: serialSolved, WallMS: serialMS,
				Workers: cfg.Workers, Rounds: rounds,
				Notes: "library ladder k=1..kmax, hybrid solver, no cross-request state",
			},
			benchEntry{
				Name:    "race-service/" + br.bucket,
				NsPerOp: raceMS * 1e6 / float64(ops),
				Ops:     ops, Solved: raceSolved, WallMS: raceMS,
				Workers: cfg.Workers, Rounds: rounds,
				Notes: "ModeOptimal jobs, concurrent submissions, shared memo+bounds caches",
			})
		t.AddRow(br.bucket, len(br.instances), rounds,
			fmt.Sprintf("%.1f", serialMS), serialSolved,
			fmt.Sprintf("%.1f", raceMS), raceSolved,
			fmt.Sprintf("%.2fx", serialMS/raceMS))
	}
	t.Notes = append(t.Notes,
		"serial: one decide per width per instance, sequential (the pre-racer pipeline)",
		"race: optimal-mode service jobs under concurrent load; later rounds reuse banked bounds")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// writeBenchJSON serialises a benchmark artifact the same way for every
// experiment (indented, trailing newline).
func writeBenchJSON(path string, f benchFile) error {
	data, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// serialLadder times the pre-racer optimal pipeline: for each instance,
// decide hw ≤ k for k = 1, 2, … until the first success.
func serialLadder(ctx context.Context, ins []hyperbench.Instance, cfg harness.Config, rounds int) (ms float64, solved int, err error) {
	start := time.Now()
	for r := 0; r < rounds; r++ {
		for _, in := range ins {
			found := false
			for k := 1; k <= cfg.KMax && !found; k++ {
				runCtx, cancel := context.WithTimeout(ctx, cfg.Timeout)
				s := logk.New(in.H, logk.Options{
					K: k, Workers: cfg.Workers,
					Hybrid: logk.HybridWeightedCount, HybridThreshold: 40,
				})
				_, ok, derr := s.Decompose(runCtx)
				cancel()
				if derr != nil {
					if ctx.Err() != nil {
						return 0, 0, ctx.Err()
					}
					break // per-width timeout: instance unsolved this round
				}
				found = ok
			}
			if found {
				solved++
			}
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond), solved, nil
}

// raceService times the racing pipeline: every instance of the round is
// submitted concurrently as a ModeOptimal job against one shared
// service, so probes of different jobs contend for (and share) the same
// worker budget, memo tables, and width bounds.
func raceService(ctx context.Context, ins []hyperbench.Instance, cfg harness.Config, rounds int) (ms float64, solved int, err error) {
	svc := htd.NewService(htd.ServiceConfig{
		TokenBudget:    cfg.Workers,
		MaxConcurrent:  4,
		MaxQueue:       4 * len(ins),
		DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
	})
	defer svc.Close()

	var solvedCount int
	var mu sync.Mutex
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for _, in := range ins {
			wg.Add(1)
			go func(in hyperbench.Instance) {
				defer wg.Done()
				res := svc.Submit(ctx, htd.ServiceRequest{
					H: in.H, K: cfg.KMax, Mode: htd.ModeOptimal,
					Workers: cfg.Workers,
					Hybrid:  htd.HybridWeightedCount, HybridThreshold: 40,
				})
				if res.Err == nil && res.OK {
					mu.Lock()
					solvedCount++
					mu.Unlock()
				}
			}(in)
		}
		wg.Wait()
		if ctx.Err() != nil {
			return 0, 0, ctx.Err()
		}
	}
	return float64(time.Since(start)) / float64(time.Millisecond), solvedCount, nil
}
