package main

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"time"

	htd "repro"
	"repro/internal/harness"
)

// aggExperiment measures the aggregate pushdown engine against
// materialise-then-fold on high-output instances: star queries whose
// answer count is the product of the arm fan-outs, so the result set
// dwarfs every bag relation. Both sides run the same plan on the same
// indexed kernel; the only difference is whether the answer rows are
// materialised before folding. The experiment also verifies the
// row-budget flip: with max_rows below the answer count the row form
// aborts with ErrRowBudget while the pushdown — whose state is bounded
// by the group count — still answers. With -benchjson the measurements
// are written as the benchmark JSON artifact (BENCH_PR6.json in CI).
func aggExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	type bucket struct {
		name    string
		arms    int // atoms R_i(c, x_i) sharing the centre variable
		centers int
		leaves  int // per-centre fan-out of each arm
		budget  int // max_rows the row form must blow
	}
	buckets := []bucket{
		// answers = centers * leaves^arms.
		{"star-3x20 (40k rows)", 3, 5, 20, 10_000},
		{"star-4x16 (131k rows)", 4, 2, 16, 10_000},
		{"star-4x24 (663k rows)", 4, 2, 24, 100_000},
	}

	out := benchFile{
		Experiment:  "agg",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Aggregate pushdown vs materialise-then-fold (COUNT over star queries)",
		Headers: []string{"Bucket", "answers", "groups",
			"pushdown-ms", "materialise-ms", "speedup", "budget-flip"},
	}

	for _, b := range buckets {
		q, db := starAggInstance(b.arms, b.centers, b.leaves)
		svc := htd.NewService(htd.ServiceConfig{
			TokenBudget:    cfg.Workers,
			MaxConcurrent:  2,
			MaxQueue:       16,
			DefaultTimeout: time.Duration(cfg.KMax) * cfg.Timeout,
		})
		planner := htd.NewQueryPlanner(svc)
		countSpec := htd.AggregateSpec{Kind: htd.AggCount}
		groupSpec := htd.AggregateSpec{Kind: htd.AggCount, GroupBy: []string{"c"}}

		// Warm the plan so both sides measure execution, not the solve.
		warm, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db, Aggregate: &countSpec})
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: warm plan: %w", b.name, err)
		}
		answers, _ := warm.Agg.Value()

		const passes = 3
		timed := func(req htd.QueryRequest) (float64, htd.QueryResult, error) {
			var best float64
			var res htd.QueryResult
			for p := 0; p < passes; p++ {
				start := time.Now()
				r, err := planner.Eval(ctx, req)
				if err != nil {
					return 0, res, err
				}
				if ms := float64(time.Since(start)) / float64(time.Millisecond); p == 0 || ms < best {
					best, res = ms, r
				}
			}
			return best, res, nil
		}

		pushMS, pushRes, err := timed(htd.QueryRequest{Query: q, DB: db, Aggregate: &countSpec})
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: pushdown: %w", b.name, err)
		}
		matMS, matRes, err := timed(htd.QueryRequest{Query: q, DB: db})
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: materialise: %w", b.name, err)
		}
		foldStart := time.Now()
		folded, err := htd.AggregateRows(matRes.Rows, countSpec)
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: fold: %w", b.name, err)
		}
		matMS += float64(time.Since(foldStart)) / float64(time.Millisecond)

		// Differential wall before reporting: both sides must agree, for
		// the scalar count and for the grouped form.
		if !reflect.DeepEqual(*pushRes.Agg, folded) {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: pushdown %+v != fold %+v", b.name, pushRes.Agg, folded)
		}
		pushGrouped, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db, Aggregate: &groupSpec})
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: grouped pushdown: %w", b.name, err)
		}
		foldGrouped, err := htd.AggregateRows(matRes.Rows, groupSpec)
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: grouped fold: %w", b.name, err)
		}
		if !reflect.DeepEqual(*pushGrouped.Agg, foldGrouped) {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: grouped pushdown != grouped fold", b.name)
		}

		// The row-budget flip: the row form must blow the budget, the
		// pushdown under the identical budget must still answer.
		if _, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db, MaxRows: b.budget}); !errors.Is(err, htd.ErrRowBudget) {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: row form under budget %d: got %v, want ErrRowBudget", b.name, b.budget, err)
		}
		budgeted, err := planner.Eval(ctx, htd.QueryRequest{Query: q, DB: db, MaxRows: b.budget, Aggregate: &countSpec})
		if err != nil {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: pushdown under budget %d: %w", b.name, b.budget, err)
		}
		if v, _ := budgeted.Agg.Value(); v != answers {
			svc.Close()
			return nil, fmt.Errorf("bucket %s: budgeted pushdown counted %d, want %d", b.name, v, answers)
		}
		svc.Close()

		speedup := matMS / pushMS
		out.Benchmarks = append(out.Benchmarks,
			benchEntry{
				Name:    "agg-pushdown/" + b.name,
				NsPerOp: pushMS * 1e6,
				Ops:     1, Solved: 1, WallMS: pushMS,
				Workers: cfg.Workers, Rounds: passes,
				Notes: fmt.Sprintf("COUNT of %d answers by per-bag partial aggregates; no row materialised; answers under max_rows=%d too", answers, b.budget),
			},
			benchEntry{
				Name:    "agg-materialise/" + b.name,
				NsPerOp: matMS * 1e6,
				Ops:     1, Solved: 1, WallMS: matMS,
				Workers: cfg.Workers, Rounds: passes,
				Notes: fmt.Sprintf("same plan, rows materialised then folded; %.1fx slower than pushdown; aborts with ErrRowBudget at max_rows=%d", speedup, b.budget),
			})
		t.AddRow(b.name, answers, len(pushGrouped.Agg.Groups),
			fmt.Sprintf("%.2f", pushMS), fmt.Sprintf("%.1f", matMS),
			fmt.Sprintf("%.1fx", speedup), "ok")
	}
	t.Notes = append(t.Notes,
		"star query R0(c,x0), ..., R{a-1}(c,x{a-1}): answers = centers x leaves^arms, bags stay at centers x leaves tuples",
		"pushdown: COUNT folded during the bottom-up pass, per-bag partial aggregates keyed by carried group variables",
		"materialise: the identical warm plan enumerates all answers, then AggregateRows folds them",
		"budget-flip: with max_rows below the answer count the row form aborts (ErrRowBudget) while the pushdown still answers",
		"both forms verified equal (scalar and grouped by the centre variable) before any number is reported")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// starAggInstance builds the star query R0(c,x0), ..., R{arms-1}(c,x{arms-1})
// with each relation holding every (centre, leaf) pair: the answer
// count is centers*leaves^arms while every relation (= every width-1
// bag) has only centers*leaves tuples — the shape where pushdown's
// advantage over materialisation is the answer/input ratio itself.
func starAggInstance(arms, centers, leaves int) (htd.CQ, htd.Database) {
	var q htd.CQ
	db := htd.Database{}
	for a := 0; a < arms; a++ {
		name := fmt.Sprintf("R%d", a)
		q.Atoms = append(q.Atoms, htd.CQAtom{
			Relation: name,
			Vars:     []string{"c", fmt.Sprintf("x%d", a)},
		})
		rel := htd.NewRelation("c1", "c2")
		for c := 0; c < centers; c++ {
			for l := 0; l < leaves; l++ {
				rel.Add(c, l)
			}
		}
		db[name] = rel
	}
	return q, db
}
