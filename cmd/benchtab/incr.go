package main

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strconv"
	"strings"
	"time"

	htd "repro"
	"repro/internal/harness"
	"repro/internal/join"
)

// incrExperiment is the incremental-maintenance benchmark behind
// `make bench-incr` (BENCH_PR10.json): per delta-size bucket it applies
// the same mutation sequence to a maintained base database three ways —
//
//   - maint: the dataset layer's delta path — MRel Insert/Delete plus
//     Commit, which extends every maintained index with an O(delta)
//     layer over the appended rows (collapsing layers only when the
//     stack grows past its bound);
//   - rebuild: the same deltas, but every commit drops the layers of
//     the mutated relations first (ForceRebuild), so each registered
//     index is rebuilt from scratch — what a server without layered
//     maintenance would pay per mutation;
//   - reupload: the pre-dataset workflow — the client re-ships the full
//     materialised state and the server re-parses the text, re-dedups
//     and rebuilds the version-1 view and rowset index (the per-query
//     column indexes would then be rebuilt on top by the next query;
//     that extra cost is not even charged here).
//
// Buckets cover delta sizes 1, 100 and 10k tuples per batch
// (insert-only, the maintenance fast path) plus a mixed insert+delete
// bucket, where commit-time compaction makes maintenance O(live) —
// reported for honesty, not gated. Two walls run in-experiment before
// anything is written:
//
//  1. identity: the query answer over each strategy's final state must
//     be byte-identical (canonical rows) across all three paths;
//  2. small-delta win: maintenance must beat the full rebuild per
//     batch on the insert buckets — the asymptotic gap the layered
//     indexes exist for.
//
// A final section measures the unchanged-data path of the redesigned
// query API: a repeated dataset-reference query must hit the plan
// cache and reuse every maintained index (zero builds), and a repeated
// inline upload of the same text must coalesce in the parse cache
// (zero re-parse) — both enforced as wall 3.
func incrExperiment(ctx context.Context, cfg harness.Config, jsonPath string) (*harness.Table, error) {
	const (
		baseN  = 30000
		domain = 30000
	)
	r := rand.New(rand.NewSource(10))
	baseR := randRows(r, baseN, domain)
	baseS := randRows(r, baseN, domain)
	baseT := randRows(r, baseN, domain)

	q, err := htd.ParseCQ("R(x,y), S(y,z).")
	if err != nil {
		return nil, err
	}
	h, err := q.Hypergraph()
	if err != nil {
		return nil, err
	}
	_, plan, ok, err := htd.OptimalWidth(ctx, h, cfg.KMax)
	if err != nil || !ok {
		return nil, fmt.Errorf("incr: no plan for the probe query (ok=%v err=%v)", ok, err)
	}

	type bucket struct {
		name    string
		delta   int // tuples inserted per batch
		deletes int // live tuples deleted per batch (mixed bucket only)
		rounds  int
		gated   bool // wall 2: maint must beat rebuild per batch
	}
	buckets := []bucket{
		{"delta1", 1, 0, 8, true},
		{"delta100", 100, 0, 8, true},
		{"delta10k", 10000, 0, 4, false},
		{"mixed100", 100, 25, 6, false},
	}

	out := benchFile{
		Experiment:  "incr",
		GeneratedBy: "cmd/benchtab",
		KMax:        cfg.KMax,
		Timestamp:   time.Now().UTC().Format(time.RFC3339),
	}
	t := &harness.Table{
		Title: "Incremental maintenance: O(delta) layers vs full index rebuild vs full re-upload",
		Headers: []string{"Bucket", "Δ/batch", "batches", "strategy",
			"ms/batch", "allocs/batch", "KB/batch", "vs-rebuild"},
	}

	for _, b := range buckets {
		// One deterministic delta sequence per bucket, shared by all
		// three strategies; the reupload texts replay it on a mirror so
		// each round's full materialised state is formatted outside the
		// measurement window (the client holds the text; the server cost
		// being measured is parse + dedup + index build).
		br := rand.New(rand.NewSource(int64(100 + b.delta)))
		deltas := make([]relDelta, b.rounds)
		texts := make([]string, b.rounds)
		mirror := map[string]*liveRel{
			"R": newLiveRel(baseR), "S": newLiveRel(baseS),
		}
		for i := range deltas {
			deltas[i] = randomDelta(br, b.delta, b.deletes, domain, mirror, i)
			deltas[i].apply(mirror)
			texts[i] = mirror["R"].text("R") + mirror["S"].text("S")
		}

		type strategy struct {
			name string
			run  func() (join.Database, memSample, error)
		}
		strategies := []strategy{
			{"maint", func() (join.Database, memSample, error) {
				return runDeltas(ctx, q, plan, baseR, baseS, deltas, false)
			}},
			{"rebuild", func() (join.Database, memSample, error) {
				return runDeltas(ctx, q, plan, baseR, baseS, deltas, true)
			}},
			{"reupload", func() (join.Database, memSample, error) {
				var final join.Database
				s, _, err := measurePass(func() (any, error) {
					for _, text := range texts {
						db, err := join.ParseRelations(text)
						if err != nil {
							return nil, err
						}
						final = join.Database{}
						for name, rel := range db {
							final[name] = join.NewMRel(rel).View()
						}
					}
					return nil, nil
				})
				return final, s, err
			}},
		}

		n := float64(b.rounds)
		var samples []memSample
		var reference *join.Relation
		for si, st := range strategies {
			final, s, err := st.run()
			if err != nil {
				return nil, fmt.Errorf("bucket %s strategy %s: %w", b.name, st.name, err)
			}
			samples = append(samples, s)

			// Wall 1: the query answer over the final state must be
			// byte-identical across every maintenance path.
			res, err := join.EvaluateCtx(ctx, q, final, plan, join.EvalOptions{})
			if err != nil {
				return nil, fmt.Errorf("bucket %s strategy %s eval: %w", b.name, st.name, err)
			}
			canon, err := htd.CanonicalRows(res)
			if err != nil {
				return nil, err
			}
			if si == 0 {
				reference = canon
			} else if !reflect.DeepEqual(canon.Rows(), reference.Rows()) {
				return nil, fmt.Errorf("bucket %s: strategy %s answers diverge from maint (%d rows vs %d)",
					b.name, st.name, canon.Size(), reference.Size())
			}

			out.Benchmarks = append(out.Benchmarks, benchEntry{
				Name:        "incr-" + st.name + "/" + b.name,
				NsPerOp:     s.ns / n,
				Ops:         b.rounds,
				Solved:      b.rounds,
				WallMS:      s.ns / 1e6,
				Workers:     1,
				Rounds:      b.rounds,
				AllocsPerOp: s.allocs / n,
				BytesPerOp:  s.bytes / n,
				Notes: fmt.Sprintf("%d inserts + %d deletes per batch over %d base tuples/rel; %s",
					b.delta, b.deletes, baseN, strategyNote(st.name)),
			})
		}
		for si, st := range strategies {
			s := samples[si]
			t.AddRow(b.name, b.delta, b.rounds, st.name,
				fmt.Sprintf("%.2f", s.ns/n/1e6),
				fmt.Sprintf("%.0f", s.allocs/n),
				fmt.Sprintf("%.0f", s.bytes/n/1024),
				fmt.Sprintf("%.2fx", s.ns/samples[1].ns))
		}

		// Wall 2: on small insert deltas the layered maintenance must be
		// strictly cheaper per batch than rebuilding every index.
		if b.gated && samples[0].ns >= samples[1].ns {
			return nil, fmt.Errorf(
				"bucket %s: O(delta) maintenance (%.2f ms/batch) did not beat the full rebuild (%.2f ms/batch)",
				b.name, samples[0].ns/n/1e6, samples[1].ns/n/1e6)
		}
	}

	// Unchanged-data path: the redesigned API's whole point is that a
	// repeat query against an unmutated dataset re-parses nothing and
	// rebuilds nothing. Measured through the public planner, walled.
	// The probe is the cyclic triangle: its minimum-width plan is a
	// single bag, so every index the executor touches lives on a base
	// relation — zero builds warm is achievable and therefore enforced.
	// (Acyclic plans semijoin-filter relations per query and rebuild
	// indexes over those intermediates; base indexes are still reused,
	// as the bucket numbers above show.)
	if err := incrUnchanged(ctx, baseR, baseS, baseT, &out, t); err != nil {
		return nil, err
	}

	t.Notes = append(t.Notes,
		"identical delta sequences per bucket; every strategy's final query answer verified byte-identical (canonical rows) before anything is written",
		"maint = MRel Insert/Delete + Commit: every maintained index extended by an O(delta) layer (stack collapses amortised into the measured batches)",
		"rebuild = same deltas, layers of mutated relations dropped before each commit: every registered index rebuilt from scratch",
		"reupload = full materialised state re-parsed + re-deduped + rowset rebuilt per batch (per-query column indexes excluded — the next query pays those on top)",
		"mixed bucket: deletes trigger commit-time tombstone compaction (O(live)) — reported, not gated",
		"gate, enforced in-experiment: maint beats rebuild per batch on the small insert buckets; warm dataset query builds zero indexes; repeat inline parse coalesces")

	if jsonPath != "" {
		if err := writeBenchJSON(jsonPath, out); err != nil {
			return nil, err
		}
		t.Notes = append(t.Notes, "benchmark JSON written to "+jsonPath)
	}
	return t, nil
}

// runDeltas replays one bucket's delta sequence against a fresh
// maintained pair; only the replay rounds run inside the measurement
// window (base construction and the index-capturing warmup query do
// not). With forceRebuild, every commit of a mutated relation first
// drops its layers — the full-rebuild baseline.
func runDeltas(ctx context.Context, q join.Query, plan *htd.Decomposition,
	baseR, baseS [][]int, deltas []relDelta, forceRebuild bool) (join.Database, memSample, error) {

	mrels := map[string]*join.MRel{
		"R": join.NewMRel(relFromRows(baseR)),
		"S": join.NewMRel(relFromRows(baseS)),
	}
	db := join.Database{"R": mrels["R"].View(), "S": mrels["S"].View()}
	// Warmup query: the executor builds and captures the column indexes
	// the query needs; Commit adopts them as maintained sets, so the
	// measured commits maintain realistic index stacks, not just the
	// rowset.
	if _, err := join.EvaluateCtx(ctx, q, db, plan, join.EvalOptions{}); err != nil {
		return nil, memSample{}, err
	}
	for _, m := range mrels {
		m.Commit()
	}

	s, _, err := measurePass(func() (any, error) {
		for _, d := range deltas {
			for _, name := range [2]string{"R", "S"} {
				ins, del := d.ins[name], d.del[name]
				if len(ins) == 0 && len(del) == 0 {
					continue
				}
				m := mrels[name]
				if _, _, err := m.Insert(ins); err != nil {
					return nil, err
				}
				if _, _, err := m.Delete(del); err != nil {
					return nil, err
				}
				if forceRebuild {
					m.ForceRebuild()
				}
				m.Commit()
			}
		}
		return nil, nil
	})
	if err != nil {
		return nil, memSample{}, err
	}
	return join.Database{"R": mrels["R"].View(), "S": mrels["S"].View()}, s, nil
}

// incrUnchanged measures and walls the unchanged-data fast paths: a
// repeated dataset-reference query (plan-cache hit, every index
// reused, zero builds) and a repeated inline upload of identical text
// (parse-cache hit, zero re-parse).
func incrUnchanged(ctx context.Context, baseR, baseS, baseT [][]int,
	out *benchFile, t *harness.Table) error {

	q, err := htd.ParseCQ("R(x,y), S(y,z), T(z,x).")
	if err != nil {
		return err
	}
	svc := htd.NewService(htd.ServiceConfig{})
	defer svc.Close()
	planner := htd.NewQueryPlanner(svc)
	db := join.Database{"R": relFromRows(baseR), "S": relFromRows(baseS), "T": relFromRows(baseT)}
	if _, err := svc.Datasets().Put("", "incr-bench", db); err != nil {
		return err
	}

	eval := func() (htd.QueryResult, float64, error) {
		start := time.Now()
		res, err := planner.Eval(ctx, htd.QueryRequest{Query: q, Dataset: "incr-bench"})
		return res, float64(time.Since(start)), err
	}
	cold, coldNs, err := eval()
	if err != nil {
		return err
	}
	var warm htd.QueryResult
	warmNs := -1.0
	for i := 0; i < 3; i++ {
		res, ns, err := eval()
		if err != nil {
			return err
		}
		if warmNs < 0 || ns < warmNs {
			warm, warmNs = res, ns
		}
	}
	// Wall 3a: the warm dataset-reference query re-plans nothing and
	// re-indexes nothing — every index it touches is a maintained reuse.
	if !warm.PlanCacheHit || warm.Exec.IndexBuilds != 0 || warm.Exec.IndexReuses == 0 {
		return fmt.Errorf(
			"warm dataset query is not the unchanged-data fast path: plan hit %v, %d index builds, %d reuses",
			warm.PlanCacheHit, warm.Exec.IndexBuilds, warm.Exec.IndexReuses)
	}
	for _, e := range []struct {
		name string
		ns   float64
		res  htd.QueryResult
	}{{"incr-query-cold/ref", coldNs, cold}, {"incr-query-warm/ref", warmNs, warm}} {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name: e.name, NsPerOp: e.ns, Ops: 1, Solved: 1,
			WallMS: e.ns / 1e6, Workers: 1, Rounds: 1,
			Notes: fmt.Sprintf("%d answers @v%d; plan hit %v, %d index builds, %d reuses",
				e.res.Rows.Size(), e.res.DatasetVersion, e.res.PlanCacheHit,
				e.res.Exec.IndexBuilds, e.res.Exec.IndexReuses),
		})
	}
	t.AddRow("unchanged", 0, 1, "query-cold", fmt.Sprintf("%.2f", coldNs/1e6), "", "", "")
	t.AddRow("unchanged", 0, 1, "query-warm", fmt.Sprintf("%.2f", warmNs/1e6), "", "",
		fmt.Sprintf("%.2fx", warmNs/coldNs))

	// Inline compatibility path: identical text must coalesce in the
	// parse cache instead of being re-parsed and re-indexed.
	text := newLiveRel(baseR).text("R") + newLiveRel(baseS).text("S") + newLiveRel(baseT).text("T")
	pc := svc.Datasets().ParseCache()
	parseOnce := func() (float64, error) {
		start := time.Now()
		_, err := pc.Parse(ctx, text)
		return float64(time.Since(start)), err
	}
	parseCold, err := parseOnce()
	if err != nil {
		return err
	}
	parseWarm, err := parseOnce()
	if err != nil {
		return err
	}
	if st := pc.Stats(); st.Misses != 1 || st.Hits < 1 {
		return fmt.Errorf("repeat inline parse did not coalesce: %+v", st)
	}
	for _, e := range []struct {
		name string
		ns   float64
	}{{"incr-parse-cold/inline", parseCold}, {"incr-parse-warm/inline", parseWarm}} {
		out.Benchmarks = append(out.Benchmarks, benchEntry{
			Name: e.name, NsPerOp: e.ns, Ops: 1, Solved: 1,
			WallMS: e.ns / 1e6, Workers: 1, Rounds: 1,
			Notes: fmt.Sprintf("%d-byte inline database text through the content-addressed parse cache", len(text)),
		})
	}
	t.AddRow("unchanged", 0, 1, "parse-cold", fmt.Sprintf("%.2f", parseCold/1e6), "", "", "")
	t.AddRow("unchanged", 0, 1, "parse-warm", fmt.Sprintf("%.2f", parseWarm/1e6), "", "",
		fmt.Sprintf("%.2fx", parseWarm/parseCold))
	return nil
}

// relDelta is one batch of the shared mutation sequence.
type relDelta struct {
	ins map[string][][]int
	del map[string][][]int
}

func (d relDelta) apply(mirror map[string]*liveRel) {
	for name, rows := range d.ins {
		mirror[name].insert(rows)
	}
	for name, rows := range d.del {
		mirror[name].remove(rows)
	}
}

// randomDelta builds one batch: size fresh inserts (split across R and
// S; a size-1 delta alternates relations) and deletes of currently
// live tuples.
func randomDelta(r *rand.Rand, size, deletes, domain int, mirror map[string]*liveRel, round int) relDelta {
	d := relDelta{ins: map[string][][]int{}, del: map[string][][]int{}}
	nR := size / 2
	if size%2 == 1 && round%2 == 0 {
		nR++
	} else if size == 1 {
		nR = 0
	}
	d.ins["R"] = randRows(r, nR, domain)
	d.ins["S"] = randRows(r, size-nR, domain)
	for _, name := range [2]string{"R", "S"} {
		d.del[name] = mirror[name].sample(r, deletes/2)
	}
	return d
}

// liveRel mirrors one relation's live tuple set with insertion order,
// for generating each round's full re-upload text.
type liveRel struct {
	rows [][]int
	live []bool
	idx  map[string]int
}

func newLiveRel(rows [][]int) *liveRel {
	l := &liveRel{idx: make(map[string]int, len(rows))}
	l.insert(rows)
	return l
}

func liveKey(row []int) string {
	var b strings.Builder
	for _, v := range row {
		b.WriteString(strconv.Itoa(v))
		b.WriteByte(',')
	}
	return b.String()
}

func (l *liveRel) insert(rows [][]int) {
	for _, row := range rows {
		k := liveKey(row)
		if i, ok := l.idx[k]; ok {
			l.live[i] = true
			continue
		}
		l.idx[k] = len(l.rows)
		l.rows = append(l.rows, row)
		l.live = append(l.live, true)
	}
}

func (l *liveRel) remove(rows [][]int) {
	for _, row := range rows {
		if i, ok := l.idx[liveKey(row)]; ok {
			l.live[i] = false
		}
	}
}

// sample picks up to n distinct live tuples to delete.
func (l *liveRel) sample(r *rand.Rand, n int) [][]int {
	var out [][]int
	for picks := 0; len(out) < n && picks < 4*n; picks++ {
		i := r.Intn(len(l.rows))
		if l.live[i] {
			out = append(out, l.rows[i])
			l.live[i] = false // mark so the same tuple is not sampled twice
		}
	}
	for _, row := range out { // restore; remove() applies the delete for real
		l.live[l.idx[liveKey(row)]] = true
	}
	return out
}

// text renders the live tuples as one rel block of the upload format.
func (l *liveRel) text(name string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "rel %s(c1,c2)\n", name)
	for i, row := range l.rows {
		if !l.live[i] {
			continue
		}
		b.WriteString(strconv.Itoa(row[0]))
		b.WriteByte(' ')
		b.WriteString(strconv.Itoa(row[1]))
		b.WriteByte('\n')
	}
	b.WriteString("end\n")
	return b.String()
}

func randRows(r *rand.Rand, n, domain int) [][]int {
	rows := make([][]int, n)
	for i := range rows {
		rows[i] = []int{r.Intn(domain), r.Intn(domain)}
	}
	return rows
}

func relFromRows(rows [][]int) *join.Relation {
	rel := join.NewRelation("c1", "c2")
	for _, row := range rows {
		rel.Add(row...)
	}
	return rel
}

func strategyNote(name string) string {
	return map[string]string{
		"maint":    "delta-maintained layered indexes: Insert/Delete + Commit, O(delta) per batch",
		"rebuild":  "same deltas, every registered index of mutated relations rebuilt from scratch per commit",
		"reupload": "full state re-parsed + re-deduped + rowset index rebuilt per batch (column indexes excluded)",
	}[name]
}
