package main

import (
	"context"
	"testing"
	"time"

	"repro/internal/decomp"
	"repro/internal/hypergraph"
)

func triangle(t *testing.T) *hypergraph.Hypergraph {
	t.Helper()
	h, err := hypergraph.ParseString("r1(x,y), r2(y,z), r3(z,x).")
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestSolveAllMethods(t *testing.T) {
	h := triangle(t)
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	for _, method := range []string{"logk", "hybrid", "detk", "basic", "ghd"} {
		d, width, ok, _, err := solve(ctx, h, method, 2, 10, 2)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !ok || width != 2 {
			t.Fatalf("%s: ok=%v width=%d", method, ok, width)
		}
		var verr error
		if method == "ghd" {
			verr = decomp.CheckGHD(d)
		} else {
			verr = decomp.CheckHD(d)
		}
		if verr != nil {
			t.Fatalf("%s: %v", method, verr)
		}
	}
}

func TestSolveWidthSearch(t *testing.T) {
	h := triangle(t)
	ctx := context.Background()
	for _, method := range []string{"opt", "logk", "hybrid", "detk"} {
		d, width, ok, _, err := solve(ctx, h, method, 0, 5, 1)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if !ok || width != 2 {
			t.Fatalf("%s: ok=%v width=%d, want optimal 2", method, ok, width)
		}
		if d == nil {
			t.Fatalf("%s: no decomposition returned", method)
		}
	}
}

func TestSolveRejectsBadMethod(t *testing.T) {
	h := triangle(t)
	if _, _, _, _, err := solve(context.Background(), h, "nope", 2, 5, 1); err == nil {
		t.Fatal("unknown method should error")
	}
	if _, _, _, _, err := solve(context.Background(), h, "ghd", 0, 5, 1); err == nil {
		t.Fatal("width search with ghd should error")
	}
}

func TestSolveNegative(t *testing.T) {
	h := triangle(t)
	_, _, ok, _, err := solve(context.Background(), h, "logk", 1, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("triangle at k=1 should be rejected")
	}
}
