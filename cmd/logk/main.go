// Command logk decomposes a hypergraph file.
//
// Usage:
//
//	logk -graph query.hg -k 3 [-method hybrid] [-workers 8] [-timeout 1h]
//
// The input uses the HyperBench format (name(v1,v2,...) terms separated
// by commas). With -k 0 the tool searches for the optimal width. Methods:
//
//	logk    log-k-decomp (default)
//	hybrid  log-k-decomp with det-k-decomp hybridisation
//	detk    det-k-decomp
//	basic   the unoptimised Algorithm 1 (tiny inputs only)
//	ghd     BalancedGo-style generalized HD search
//	opt     direct optimal-width solver (ignores -k)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"repro/internal/balgo"
	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/opt"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "hypergraph file (HyperBench format); '-' for stdin")
		k         = flag.Int("k", 0, "width bound; 0 searches for the optimal width")
		method    = flag.String("method", "logk", "logk | hybrid | detk | basic | ghd | opt")
		workers   = flag.Int("workers", 1, "parallel workers for logk/hybrid")
		timeout   = flag.Duration("timeout", time.Hour, "solve budget")
		maxK      = flag.Int("maxk", 10, "width search bound when -k 0")
		dot       = flag.Bool("dot", false, "emit Graphviz dot instead of the tree rendering")
		quiet     = flag.Bool("quiet", false, "print only the verdict line")
		stats     = flag.Bool("stats", false, "print solver statistics (logk/hybrid)")
	)
	flag.Parse()
	if *graphPath == "" {
		fmt.Fprintln(os.Stderr, "logk: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	h, err := readGraph(*graphPath)
	if err != nil {
		fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	start := time.Now()
	d, width, ok, solverStats, err := solve(ctx, h, *method, *k, *maxK, *workers)
	elapsed := time.Since(start)
	if err != nil {
		fatal(fmt.Errorf("solve: %w", err))
	}
	if !ok {
		if *k > 0 {
			fmt.Printf("NO: hw(%s) > %d  [%s, %v]\n", *graphPath, *k, *method, elapsed)
		} else {
			fmt.Printf("UNKNOWN: hw(%s) > %d or budget exhausted  [%s, %v]\n", *graphPath, *maxK, *method, elapsed)
		}
		os.Exit(1)
	}

	// Re-verify before reporting.
	var verr error
	if *method == "ghd" {
		verr = decomp.CheckGHD(d)
	} else {
		verr = decomp.CheckHD(d)
	}
	if verr == nil {
		verr = decomp.CheckWidth(d, width)
	}
	if verr != nil {
		fatal(fmt.Errorf("internal error: produced decomposition failed validation: %w", verr))
	}

	fmt.Printf("YES: width %d  [%s, %d nodes, depth %d, %v]\n",
		width, *method, d.NumNodes(), d.Depth(), elapsed)
	if !*quiet {
		if *dot {
			fmt.Print(d.DOT())
		} else {
			fmt.Print(d.String())
		}
	}
	if *stats && solverStats != nil {
		fmt.Printf("stats: candidates=%d parent-candidates=%d max-recursion-depth=%d hybrid-calls=%d\n",
			solverStats.Candidates, solverStats.ParentCands, solverStats.MaxDepth, solverStats.HybridCalls)
	}
}

func readGraph(path string) (*hypergraph.Hypergraph, error) {
	if path == "-" {
		return hypergraph.Parse(os.Stdin)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return hypergraph.Parse(f)
}

func solve(ctx context.Context, h *hypergraph.Hypergraph, method string, k, maxK, workers int) (*decomp.Decomp, int, bool, *logk.Stats, error) {
	if method == "opt" || k == 0 {
		if method != "opt" && method != "logk" && method != "hybrid" && method != "detk" {
			return nil, 0, false, nil, fmt.Errorf("width search (-k 0) supports methods opt/logk/hybrid/detk")
		}
		if method == "opt" {
			w, d, ok, err := opt.New(h, maxK).Solve(ctx)
			return d, w, ok, nil, err
		}
		for w := 1; w <= maxK; w++ {
			d, _, ok, st, err := solve(ctx, h, method, w, maxK, workers)
			if err != nil || ok {
				return d, w, ok, st, err
			}
		}
		return nil, 0, false, nil, nil
	}

	switch method {
	case "logk":
		s := logk.New(h, logk.Options{K: k, Workers: workers})
		d, ok, err := s.Decompose(ctx)
		st := s.Stats()
		return d, k, ok, &st, err
	case "hybrid":
		s := logk.New(h, logk.Options{K: k, Workers: workers,
			Hybrid: logk.HybridWeightedCount, HybridThreshold: 40})
		d, ok, err := s.Decompose(ctx)
		st := s.Stats()
		return d, k, ok, &st, err
	case "detk":
		d, ok, err := detk.New(h, k).Decompose(ctx)
		return d, k, ok, nil, err
	case "basic":
		d, ok, err := logk.NewBasic(h, k).Decompose(ctx)
		return d, k, ok, nil, err
	case "ghd":
		d, ok, err := balgo.New(h, balgo.Options{K: k}).Decompose(ctx)
		return d, k, ok, nil, err
	default:
		return nil, 0, false, nil, fmt.Errorf("unknown method %q", method)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "logk:", err)
	os.Exit(1)
}
