package main

import (
	"context"
	"math/rand"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-rounds", "7", "-maxv", "5", "-maxe", "6", "-kmax", "2", "-seed", "42", "-basic=false"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.rounds != 7 || cfg.maxV != 5 || cfg.maxE != 6 || cfg.kmax != 2 || cfg.seed != 42 || cfg.basic {
		t.Fatalf("flags misparsed: %+v", cfg)
	}

	if _, err := parseFlags([]string{"-rounds", "0"}); err == nil {
		t.Fatal("rounds=0 must be rejected")
	}
	if _, err := parseFlags([]string{"-maxv", "1"}); err == nil {
		t.Fatal("maxv=1 must be rejected (need at least 2 vertices)")
	}
	if _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Fatal("unknown flag must be rejected")
	}

	def, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if def.rounds != 200 || def.kmax != 3 || !def.basic {
		t.Fatalf("defaults wrong: %+v", def)
	}
}

// TestRunEndToEnd drives the differential loop (including the racer
// agreement check) over a small random batch and expects it clean.
func TestRunEndToEnd(t *testing.T) {
	var out strings.Builder
	cfg := config{rounds: 60, maxV: 6, maxE: 6, kmax: 2, seed: 1, basic: true}
	if err := run(context.Background(), cfg, &out); err != nil {
		t.Fatalf("crosscheck found a disagreement: %v", err)
	}
	if !strings.Contains(out.String(), "crosscheck passed: 60 instances, widths 1..2") {
		t.Fatalf("missing summary line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "50/60 rounds clean") {
		t.Fatalf("missing progress line:\n%s", out.String())
	}
}

// TestCheckErrorCarriesInstance: failures must print the offending
// hypergraph for triage.
func TestCheckErrorCarriesInstance(t *testing.T) {
	h := randomHypergraph(rand.New(rand.NewSource(1)), 5, 5)
	err := failf(h, "method %s disagreed at k=%d", "detk", 2)
	msg := err.Error()
	if !strings.Contains(msg, "detk disagreed at k=2") {
		t.Fatalf("message lost: %q", msg)
	}
	if !strings.Contains(msg, "instance:") || !strings.Contains(msg, "(") {
		t.Fatalf("instance rendering missing: %q", msg)
	}
}

func TestRandomHypergraphRespectsBounds(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		h := randomHypergraph(r, 6, 7)
		if h.NumVertices() > 6 || h.NumEdges() > 7 || h.NumEdges() < 1 {
			t.Fatalf("bounds violated: |V|=%d |E|=%d", h.NumVertices(), h.NumEdges())
		}
	}
}
