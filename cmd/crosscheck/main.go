// Command crosscheck is a differential-testing harness: it generates
// random hypergraphs and verifies that the optimised log-k-decomp (in
// sequential, parallel, and hybrid configurations), the basic
// Algorithm 1, and det-k-decomp agree on the decision hw(H) ≤ k for
// every k, that every produced decomposition validates against the
// independent checker, and that hw = 1 coincides with GYO acyclicity.
//
// Usage:
//
//	crosscheck -rounds 500 -maxv 9 -maxe 9 -kmax 3 [-seed 1]
//
// Exits non-zero on the first disagreement, printing the offending
// instance in HyperBench syntax for triage.
package main

import (
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/logk"
)

func main() {
	var (
		rounds = flag.Int("rounds", 200, "random instances to test")
		maxV   = flag.Int("maxv", 9, "max vertices")
		maxE   = flag.Int("maxe", 9, "max edges")
		kmax   = flag.Int("kmax", 3, "widths to test (1..kmax)")
		seed   = flag.Int64("seed", 1, "base seed")
		basic  = flag.Bool("basic", true, "include the slow Algorithm 1 oracle")
	)
	flag.Parse()
	ctx := context.Background()

	for round := 0; round < *rounds; round++ {
		r := rand.New(rand.NewSource(*seed + int64(round)))
		h := randomHypergraph(r, *maxV, *maxE)
		for k := 1; k <= *kmax; k++ {
			verdicts := map[string]bool{}
			check := func(name string, d *decomp.Decomp, ok bool, err error, ghd bool) {
				if err != nil {
					fail(h, "%s k=%d errored: %v", name, k, err)
				}
				verdicts[name] = ok
				if !ok {
					return
				}
				var verr error
				if ghd {
					verr = decomp.CheckGHD(d)
				} else {
					verr = decomp.CheckHD(d)
				}
				if verr == nil {
					verr = decomp.CheckWidth(d, k)
				}
				if verr != nil {
					fail(h, "%s k=%d produced invalid decomposition: %v", name, k, verr)
				}
			}

			d, ok, err := logk.New(h, logk.Options{K: k}).Decompose(ctx)
			check("logk", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k, Workers: 8}).Decompose(ctx)
			check("logk-par", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k,
				Hybrid: logk.HybridWeightedCount, HybridThreshold: 10}).Decompose(ctx)
			check("logk-hyb", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k, NoCache: true}).Decompose(ctx)
			check("logk-nocache", d, ok, err, false)
			d, ok, err = detk.New(h, k).Decompose(ctx)
			check("detk", d, ok, err, false)
			if *basic {
				d, ok, err = logk.NewBasic(h, k).Decompose(ctx)
				check("basic", d, ok, err, false)
			}

			want := verdicts["logk"]
			for name, got := range verdicts {
				if got != want {
					fail(h, "k=%d: %s=%v but logk=%v", k, name, got, want)
				}
			}
			if k == 1 && want != h.IsAcyclic() {
				fail(h, "hw<=1 is %v but GYO acyclicity is %v", want, h.IsAcyclic())
			}
		}
		if (round+1)%50 == 0 {
			fmt.Printf("%d/%d rounds clean\n", round+1, *rounds)
		}
	}
	fmt.Printf("crosscheck passed: %d instances, widths 1..%d\n", *rounds, *kmax)
}

func fail(h *hypergraph.Hypergraph, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "crosscheck FAILED: "+format+"\n", args...)
	fmt.Fprintf(os.Stderr, "instance:\n%s\n", h)
	os.Exit(1)
}

func randomHypergraph(r *rand.Rand, maxV, maxE int) *hypergraph.Hypergraph {
	nv := 2 + r.Intn(maxV-1)
	ne := 1 + r.Intn(maxE)
	var b hypergraph.Builder
	for e := 0; e < ne; e++ {
		maxArity := 3
		if maxArity > nv {
			maxArity = nv
		}
		arity := 1 + r.Intn(maxArity)
		seen := map[int]bool{}
		var names []string
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, "v"+strconv.Itoa(v))
			}
		}
		b.MustAddEdge("", names...)
	}
	return b.Build()
}
