// Command crosscheck is a differential-testing harness: it generates
// random hypergraphs and verifies that the optimised log-k-decomp (in
// sequential, parallel, and hybrid configurations), the basic
// Algorithm 1, det-k-decomp, and the optimal-width racer agree on the
// decision hw(H) ≤ k for every k, that every produced decomposition
// validates against the independent checker, and that hw = 1 coincides
// with GYO acyclicity.
//
// Usage:
//
//	crosscheck -rounds 500 -maxv 9 -maxe 9 -kmax 3 [-seed 1]
//
// Exits non-zero on the first disagreement, printing the offending
// instance in HyperBench syntax for triage.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"strconv"

	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/race"
)

// config holds the parsed flags.
type config struct {
	rounds int
	maxV   int
	maxE   int
	kmax   int
	seed   int64
	basic  bool
}

// parseFlags parses args (without the program name) into a config.
func parseFlags(args []string) (config, error) {
	fs := flag.NewFlagSet("crosscheck", flag.ContinueOnError)
	cfg := config{}
	fs.IntVar(&cfg.rounds, "rounds", 200, "random instances to test")
	fs.IntVar(&cfg.maxV, "maxv", 9, "max vertices")
	fs.IntVar(&cfg.maxE, "maxe", 9, "max edges")
	fs.IntVar(&cfg.kmax, "kmax", 3, "widths to test (1..kmax)")
	fs.Int64Var(&cfg.seed, "seed", 1, "base seed")
	fs.BoolVar(&cfg.basic, "basic", true, "include the slow Algorithm 1 oracle")
	if err := fs.Parse(args); err != nil {
		return cfg, err // the FlagSet has already reported this one
	}
	if cfg.rounds < 1 || cfg.maxV < 2 || cfg.maxE < 1 || cfg.kmax < 1 {
		return cfg, &rangeError{fmt.Sprintf(
			"crosscheck: rounds/maxv/maxe/kmax must be positive (got %d/%d/%d/%d)",
			cfg.rounds, cfg.maxV, cfg.maxE, cfg.kmax)}
	}
	return cfg, nil
}

// rangeError marks validation failures that the FlagSet did not already
// print, so main knows to report them before exiting.
type rangeError struct{ msg string }

func (e *rangeError) Error() string { return e.msg }

// checkError carries the offending instance for triage.
type checkError struct {
	h   *hypergraph.Hypergraph
	msg string
}

func (e *checkError) Error() string {
	return fmt.Sprintf("%s\ninstance:\n%s", e.msg, e.h)
}

func failf(h *hypergraph.Hypergraph, format string, args ...any) error {
	return &checkError{h: h, msg: fmt.Sprintf(format, args...)}
}

// run performs the differential test, writing progress to w. It returns
// the first disagreement as an error.
func run(ctx context.Context, cfg config, w io.Writer) error {
	for round := 0; round < cfg.rounds; round++ {
		r := rand.New(rand.NewSource(cfg.seed + int64(round)))
		h := randomHypergraph(r, cfg.maxV, cfg.maxE)
		optWidth := 0 // smallest k with a verdict of yes so far, 0 = none
		for k := 1; k <= cfg.kmax; k++ {
			verdicts := map[string]bool{}
			var firstErr error
			check := func(name string, d *decomp.Decomp, ok bool, err error, ghd bool) {
				if firstErr != nil {
					return
				}
				if err != nil {
					firstErr = failf(h, "%s k=%d errored: %v", name, k, err)
					return
				}
				verdicts[name] = ok
				if !ok {
					return
				}
				var verr error
				if ghd {
					verr = decomp.CheckGHD(d)
				} else {
					verr = decomp.CheckHD(d)
				}
				if verr == nil {
					verr = decomp.CheckWidth(d, k)
				}
				if verr != nil {
					firstErr = failf(h, "%s k=%d produced invalid decomposition: %v", name, k, verr)
				}
			}

			d, ok, err := logk.New(h, logk.Options{K: k}).Decompose(ctx)
			check("logk", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k, Workers: 8}).Decompose(ctx)
			check("logk-par", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k,
				Hybrid: logk.HybridWeightedCount, HybridThreshold: 10}).Decompose(ctx)
			check("logk-hyb", d, ok, err, false)
			d, ok, err = logk.New(h, logk.Options{K: k, NoCache: true}).Decompose(ctx)
			check("logk-nocache", d, ok, err, false)
			d, ok, err = detk.New(h, k).Decompose(ctx)
			check("detk", d, ok, err, false)
			if cfg.basic {
				d, ok, err = logk.NewBasic(h, k).Decompose(ctx)
				check("basic", d, ok, err, false)
			}
			if firstErr != nil {
				return firstErr
			}

			want := verdicts["logk"]
			for name, got := range verdicts {
				if got != want {
					return failf(h, "k=%d: %s=%v but logk=%v", k, name, got, want)
				}
			}
			if k == 1 && want != h.IsAcyclic() {
				return failf(h, "hw<=1 is %v but GYO acyclicity is %v", want, h.IsAcyclic())
			}
			if want && optWidth == 0 {
				optWidth = k
			}
		}

		// The racer must agree with the width ladder just computed:
		// found exactly when some k ≤ kmax succeeded, at that width.
		res, err := race.New(h, race.Config{KMax: cfg.kmax, MaxProbes: 3, Workers: 4}).Solve(ctx)
		if err != nil {
			return failf(h, "racer errored: %v", err)
		}
		if res.Found != (optWidth > 0) || (res.Found && res.Width != optWidth) {
			return failf(h, "racer found=%v width=%d, ladder optimum %d", res.Found, res.Width, optWidth)
		}
		if res.Found {
			if verr := decomp.CheckHD(res.Decomp); verr != nil {
				return failf(h, "racer produced invalid decomposition: %v", verr)
			}
		}

		if (round+1)%50 == 0 {
			fmt.Fprintf(w, "%d/%d rounds clean\n", round+1, cfg.rounds)
		}
	}
	fmt.Fprintf(w, "crosscheck passed: %d instances, widths 1..%d\n", cfg.rounds, cfg.kmax)
	return nil
}

func main() {
	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		var re *rangeError
		if errors.As(err, &re) {
			fmt.Fprintln(os.Stderr, re)
		}
		os.Exit(2)
	}
	if err := run(context.Background(), cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "crosscheck FAILED: %v\n", err)
		os.Exit(1)
	}
}

func randomHypergraph(r *rand.Rand, maxV, maxE int) *hypergraph.Hypergraph {
	nv := 2 + r.Intn(maxV-1)
	ne := 1 + r.Intn(maxE)
	var b hypergraph.Builder
	for e := 0; e < ne; e++ {
		maxArity := 3
		if maxArity > nv {
			maxArity = nv
		}
		arity := 1 + r.Intn(maxArity)
		seen := map[int]bool{}
		var names []string
		for len(names) < arity {
			v := r.Intn(nv)
			if !seen[v] {
				seen[v] = true
				names = append(names, "v"+strconv.Itoa(v))
			}
		}
		b.MustAddEdge("", names...)
	}
	return b.Build()
}
