package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestProbeEndToEnd runs one probe line on a tiny instance and checks
// that every method column (including the racer) reports the known
// width within a generous budget.
func TestProbeEndToEnd(t *testing.T) {
	var out strings.Builder
	probe(&out, "cylinder(6)", cylinder(6), 4, 5*time.Second)
	got := out.String()
	if !strings.Contains(got, "cylinder(6)") || !strings.Contains(got, "|E|=18") {
		t.Fatalf("instance header wrong:\n%s", got)
	}
	for _, col := range []string{"detk:w=3", "hyb:w=3", "logk:w=3", "race:w=3", "opt:w=3"} {
		if !strings.Contains(got, col) {
			t.Errorf("column %q missing:\n%s", col, got)
		}
	}
}

func TestDispatchDefaultAndErrors(t *testing.T) {
	// Bad profile width must error without running anything.
	var out strings.Builder
	if err := dispatch([]string{"profile", "notanumber"}, &out); err == nil {
		t.Fatal("bad profile width must error")
	}
}

func TestDispatchProfile(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := profileRun(&out, 1, 6, dir); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	if !strings.Contains(got, "k=1 ok=false") {
		t.Fatalf("cylinder(6) at k=1 must be refuted:\n%s", got)
	}
	prof := filepath.Join(dir, "logk_k1.prof")
	if st, err := os.Stat(prof); err != nil || st.Size() == 0 {
		t.Fatalf("profile not written: %v", err)
	}
}

func TestGeneratorShapes(t *testing.T) {
	if h := cylinder(8); h.NumEdges() != 24 || h.NumVertices() != 16 {
		t.Fatalf("cylinder(8): |E|=%d |V|=%d", h.NumEdges(), h.NumVertices())
	}
	if h := grid(3, 4); h.NumEdges() != 17 || h.NumVertices() != 12 {
		t.Fatalf("grid(3,4): |E|=%d |V|=%d", h.NumEdges(), h.NumVertices())
	}
	if h := cliqueChain(3, 4); h.NumVertices() != 10 {
		t.Fatalf("cliqueChain(3,4): |V|=%d, want 10 (shared articulation vertices)", h.NumVertices())
	}
	if h := chordedDense(12, 3); h.NumEdges() != 16 {
		t.Fatalf("chordedDense(12,3): |E|=%d", h.NumEdges())
	}
}
