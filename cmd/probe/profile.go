package main

import (
	"context"
	"fmt"
	"os"
	"runtime/pprof"
	"strconv"
	"time"

	"repro/internal/logk"
)

// profileRun writes a CPU profile of one plain log-k-decomp run; invoked
// via `go run ./cmd/probe profile <k> [n]`.
func profileRun(k int) {
	n := 20
	if len(os.Args) > 3 {
		if v, err := strconv.Atoi(os.Args[3]); err == nil {
			n = v
		}
	}
	h := cylinder(n)
	f, err := os.Create(fmt.Sprintf("/tmp/logk_k%d.prof", k))
	if err != nil {
		panic(err)
	}
	defer f.Close()
	pprof.StartCPUProfile(f)
	defer pprof.StopCPUProfile()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := logk.New(h, logk.Options{K: k, Workers: 1})
	start := time.Now()
	_, ok, err := s.Decompose(ctx)
	fmt.Printf("k=%d ok=%v err=%v in %v stats=%+v\n", k, ok, err, time.Since(start), s.Stats())
}
