package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"repro/internal/logk"
)

// profileRun writes a CPU profile of one plain log-k-decomp run on
// cylinder(n) into dir; invoked via `go run ./cmd/probe profile <k> [n]`.
func profileRun(w io.Writer, k, n int, dir string) error {
	h := cylinder(n)
	path := filepath.Join(dir, fmt.Sprintf("logk_k%d.prof", k))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pprof.StartCPUProfile(f); err != nil {
		return err
	}
	defer pprof.StopCPUProfile()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	s := logk.New(h, logk.Options{K: k, Workers: 1})
	start := time.Now()
	_, ok, err := s.Decompose(ctx)
	fmt.Fprintf(w, "k=%d ok=%v err=%v in %v stats=%+v\nprofile: %s\n",
		k, ok, err, time.Since(start), s.Stats(), path)
	return nil
}
