// Command probe is a scratch tool for calibrating the benchmark suite:
// it measures which instance families separate the methods, including
// the optimal-width racer against the serial ladders.
package main

import (
	"context"
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/logk"
	"repro/internal/opt"
	"repro/internal/race"
)

func cylinder(n int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		j := (i + 1) % n
		b.MustAddEdge("", "a"+strconv.Itoa(i), "a"+strconv.Itoa(j))
		b.MustAddEdge("", "b"+strconv.Itoa(i), "b"+strconv.Itoa(j))
		b.MustAddEdge("", "a"+strconv.Itoa(i), "b"+strconv.Itoa(i))
	}
	return b.Build()
}

func grid(r, c int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	name := func(i, j int) string { return fmt.Sprintf("g%d_%d", i, j) }
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				b.MustAddEdge("", name(i, j), name(i, j+1))
			}
			if i+1 < r {
				b.MustAddEdge("", name(i, j), name(i+1, j))
			}
		}
	}
	return b.Build()
}

func cliqueChain(cliques, size int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for c := 0; c < cliques; c++ {
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				vi := fmt.Sprintf("c%d_%d", c, i)
				vj := fmt.Sprintf("c%d_%d", c, j)
				// share vertex 0 of next clique with vertex size-1 of this
				if c+1 < cliques && i == size-1 {
					vi = fmt.Sprintf("c%d_%d", c+1, 0)
				}
				if c+1 < cliques && j == size-1 {
					vj = fmt.Sprintf("c%d_%d", c+1, 0)
				}
				b.MustAddEdge("", vi, vj)
			}
		}
	}
	return b.Build()
}

func chordedDense(n, stride int) *hypergraph.Hypergraph {
	var b hypergraph.Builder
	for i := 0; i < n; i++ {
		b.MustAddEdge("", "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+1)%n))
	}
	for i := 0; i < n; i += stride {
		b.MustAddEdge("", "x"+strconv.Itoa(i), "x"+strconv.Itoa((i+stride)%n))
	}
	return b.Build()
}

// probe runs every method on h and writes one comparison line to w.
func probe(w io.Writer, name string, h *hypergraph.Hypergraph, kmax int, budget time.Duration) {
	fmt.Fprintf(w, "%-22s |E|=%-4d |V|=%-4d ", name, h.NumEdges(), h.NumVertices())
	type method struct {
		name string
		run  func(ctx context.Context, k int) (bool, error)
	}
	methods := []method{
		{"detk", func(ctx context.Context, k int) (bool, error) {
			_, ok, err := detk.New(h, k).Decompose(ctx)
			return ok, err
		}},
		{"hyb", func(ctx context.Context, k int) (bool, error) {
			_, ok, err := logk.New(h, logk.Options{K: k, Workers: 8,
				Hybrid: logk.HybridWeightedCount, HybridThreshold: 40}).Decompose(ctx)
			return ok, err
		}},
		{"logk", func(ctx context.Context, k int) (bool, error) {
			_, ok, err := logk.New(h, logk.Options{K: k, Workers: 8}).Decompose(ctx)
			return ok, err
		}},
	}
	for _, m := range methods {
		start := time.Now()
		width := 0
		proven := true
		for k := 1; k <= kmax; k++ {
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			ok, err := m.run(ctx, k)
			cancel()
			if err != nil {
				proven = false
				continue
			}
			if ok {
				width = k
				break
			}
		}
		status := "UNSOLVED"
		if width > 0 && proven {
			status = fmt.Sprintf("w=%d", width)
		} else if width > 0 {
			status = fmt.Sprintf("w<=%d?", width)
		}
		fmt.Fprintf(w, " %s:%-8s %5.2fs |", m.name, status, time.Since(start).Seconds())
	}
	// race: the full budget covers the whole race, not one width.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), time.Duration(kmax)*budget)
	res, err := race.New(h, race.Config{KMax: kmax, MaxProbes: 3, Workers: 8,
		Hybrid: logk.HybridWeightedCount, HybridThreshold: 40}).Solve(ctx)
	cancel()
	if err == nil && res.Found {
		fmt.Fprintf(w, " race:w=%d %5.2fs |", res.Width, time.Since(start).Seconds())
	} else {
		fmt.Fprintf(w, " race:UNSOLVED %5.2fs |", time.Since(start).Seconds())
	}
	// opt
	start = time.Now()
	ctx, cancel = context.WithTimeout(context.Background(), budget)
	ow, _, ok, _ := opt.New(h, kmax).Solve(ctx)
	cancel()
	if ok {
		fmt.Fprintf(w, " opt:w=%d %5.2fs", ow, time.Since(start).Seconds())
	} else {
		fmt.Fprintf(w, " opt:UNSOLVED %5.2fs", time.Since(start).Seconds())
	}
	fmt.Fprintln(w)
}

// defaultSuite writes the standard calibration sweep to w.
func defaultSuite(w io.Writer, budget time.Duration) {
	probe(w, "cylinder(20)", cylinder(20), 6, budget)
	probe(w, "cylinder(30)", cylinder(30), 6, budget)
	probe(w, "grid(4,10)", grid(4, 10), 6, budget)
	probe(w, "grid(4,15)", grid(4, 15), 6, budget)
	probe(w, "grid(5,12)", grid(5, 12), 6, budget)
	probe(w, "cliqueChain(8,5)", cliqueChain(8, 5), 6, budget)
	probe(w, "cliqueChain(10,4)", cliqueChain(10, 4), 6, budget)
	probe(w, "chordedDense(60,4)", chordedDense(60, 4), 6, budget)
	probe(w, "chordedDense(80,5)", chordedDense(80, 5), 6, budget)
}

// dispatch routes the CLI: "profile <k> [n]" writes a CPU profile, no
// arguments runs the calibration sweep.
func dispatch(args []string, w io.Writer) error {
	if len(args) > 1 && args[0] == "profile" {
		k, err := strconv.Atoi(args[1])
		if err != nil {
			return fmt.Errorf("probe profile: bad width %q: %w", args[1], err)
		}
		n := 20
		if len(args) > 2 {
			if v, err := strconv.Atoi(args[2]); err == nil {
				n = v
			}
		}
		return profileRun(w, k, n, os.TempDir())
	}
	defaultSuite(w, 500*time.Millisecond)
	return nil
}

func main() {
	if err := dispatch(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
