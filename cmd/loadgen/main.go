// Command loadgen drives a live htdserve with multi-tenant query
// traffic and reports per-tenant latency quantiles and error rates —
// the measurement half of the load wall. Each -tenant flag adds one
// closed-loop-free traffic source (requests fire on a fixed schedule,
// never waiting for earlier responses, so a slow server cannot hide
// behind its own backpressure), with a hotkey or uniform query mix
// and an optional write percentage: a tenant with writepct > 0
// uploads its own named dataset before the run and turns that share
// of its requests into NDJSON mutation batches against it, so the
// wall is exercised by the write path too, inside each tenant's fence.
//
// Usage:
//
//	loadgen -url http://localhost:8080 -duration 10s \
//	        -tenant greedy:400:hotkey -tenant polite:10:uniform:20 \
//	        -out report.json
//
// Gate mode turns the report into an assertion (exit 1 on violation):
//
//	loadgen ... -gate-tenant polite -gate-p99-ms 250 \
//	        -gate-error-rate 0.01 -gate-overall-p99-ms 500
//
// which is how `make load-gate` pins tenant isolation in CI: a greedy
// tenant at 10x its rate limit must not push the polite tenant's p99
// or error rate past the bound.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/join"
	"repro/internal/query"
)

// tenantSpec is one -tenant flag: name, offered rate, query mix, and
// the percentage of requests that are dataset mutations.
type tenantSpec struct {
	Name     string
	QPS      float64
	Mix      string  // "uniform" or "hotkey"
	WritePct float64 // 0..100: share of requests that mutate the tenant's dataset
}

// tenantFlags parses repeated -tenant name:qps[:mix[:writepct]] flags.
type tenantFlags []tenantSpec

func (t *tenantFlags) String() string {
	parts := make([]string, len(*t))
	for i, s := range *t {
		parts[i] = fmt.Sprintf("%s:%g:%s:%g", s.Name, s.QPS, s.Mix, s.WritePct)
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	spec, err := parseTenantSpec(v)
	if err != nil {
		return err
	}
	*t = append(*t, spec)
	return nil
}

func parseTenantSpec(v string) (tenantSpec, error) {
	parts := strings.Split(v, ":")
	if len(parts) < 2 || len(parts) > 4 {
		return tenantSpec{}, fmt.Errorf("tenant %q: want name:qps[:mix[:writepct]]", v)
	}
	qps, err := strconv.ParseFloat(parts[1], 64)
	if err != nil || qps <= 0 {
		return tenantSpec{}, fmt.Errorf("tenant %q: qps must be a positive number", v)
	}
	mix := "uniform"
	if len(parts) >= 3 {
		mix = parts[2]
	}
	if mix != "uniform" && mix != "hotkey" {
		return tenantSpec{}, fmt.Errorf("tenant %q: mix must be uniform or hotkey", v)
	}
	var writePct float64
	if len(parts) == 4 {
		writePct, err = strconv.ParseFloat(parts[3], 64)
		if err != nil || writePct < 0 || writePct > 100 {
			return tenantSpec{}, fmt.Errorf("tenant %q: writepct must be in 0..100", v)
		}
	}
	if strings.TrimSpace(parts[0]) == "" {
		return tenantSpec{}, fmt.Errorf("tenant %q: empty name", v)
	}
	return tenantSpec{Name: parts[0], QPS: qps, Mix: mix, WritePct: writePct}, nil
}

// config is everything run needs; main fills it from flags so tests
// can fill it directly.
type config struct {
	URL      string
	Duration time.Duration
	Tenants  []tenantSpec
	Seed     int64
	Timeout  time.Duration // per-request timeout
	Wait     time.Duration // how long to poll /healthz before starting
	PoolSize int           // distinct queries per workload pool
}

// TenantReport is the per-tenant section of the JSON report.
type TenantReport struct {
	Tenant    string  `json:"tenant"`
	Mix       string  `json:"mix,omitempty"`
	TargetQPS float64 `json:"target_qps,omitempty"`
	Sent      int     `json:"sent"`
	OK        int     `json:"ok"`
	Writes    int     `json:"writes,omitempty"` // mutation requests sent
	Rejected  int     `json:"rejected"`         // 429s from the tenant wall
	Errors    int     `json:"errors"`           // transport failures + non-200/429
	// ErrorRate counts rejections as failures too: from the caller's
	// seat a 429 is still a request that did not get an answer.
	ErrorRate float64 `json:"error_rate"`
	P50MS     float64 `json:"p50_ms"`
	P99MS     float64 `json:"p99_ms"`
	MaxMS     float64 `json:"max_ms"`
}

// Report is the loadgen run artifact (BENCH_PR7.json in CI).
type Report struct {
	URL             string          `json:"url"`
	DurationSeconds float64         `json:"duration_seconds"`
	Tenants         []TenantReport  `json:"tenants"`
	Overall         TenantReport    `json:"overall"`
	ServerStats     json.RawMessage `json:"server_stats,omitempty"`
}

// sample is one finished request.
type sample struct {
	latency time.Duration
	status  int  // 0 for transport errors
	ok      bool // status 200
	write   bool // a mutation, not a query
}

// workload is a pool of pre-rendered /query bodies plus a mix policy,
// and — for write tenants — the dataset upload text and a pool of
// NDJSON mutation batches against it.
type workload struct {
	bodies  [][]byte
	hotkey  bool
	dataset string   // rel-block upload for PUT /data/{name}; "" = read-only tenant
	mutates [][]byte // NDJSON bodies for POST /data/{name}/mutate
}

func (w *workload) pick(r *rand.Rand) []byte {
	if w.hotkey && r.Float64() < 0.8 {
		return w.bodies[0]
	}
	return w.bodies[r.Intn(len(w.bodies))]
}

// buildWorkload renders size distinct random conjunctive-query
// instances as /query request bodies, deterministically from seed.
// With writes, it additionally renders one dataset and a pool of
// mutation batches against its relations.
func buildWorkload(seed int64, size int, hotkey, writes bool) *workload {
	r := rand.New(rand.NewSource(seed))
	w := &workload{hotkey: hotkey}
	for i := 0; i < size; i++ {
		q, db := query.RandomInstance(r, query.GenConfig{})
		body, err := json.Marshal(map[string]any{
			"query":      join.FormatQuery(q),
			"database":   formatRelations(db),
			"timeout_ms": 5000,
		})
		if err != nil {
			panic(err) // static shapes; cannot fail
		}
		w.bodies = append(w.bodies, body)
	}
	if writes {
		_, db := query.RandomInstance(r, query.GenConfig{})
		w.dataset = formatRelations(db)
		names := make([]string, 0, len(db))
		for name := range db {
			names = append(names, name)
		}
		sort.Strings(names)
		for i := 0; i < size; i++ {
			var b bytes.Buffer
			enc := json.NewEncoder(&b)
			for ops := 1 + r.Intn(2); ops > 0; ops-- {
				name := names[r.Intn(len(names))]
				rel := db[name]
				op := "insert"
				rows := make([][]int, 1+r.Intn(3))
				for j := range rows {
					row := make([]int, len(rel.Attrs))
					for k := range row {
						row[k] = r.Intn(8)
					}
					rows[j] = row
				}
				if r.Intn(3) == 0 && rel.Size() > 0 {
					// Delete a tuple that may or may not still be live —
					// set semantics make either a valid delta.
					op = "delete"
					rows = rows[:1]
					rows[0] = rel.AppendRow(rows[0][:0], r.Intn(rel.Size()))
				}
				if err := enc.Encode(map[string]any{"op": op, "rel": name, "rows": rows}); err != nil {
					panic(err)
				}
			}
			w.mutates = append(w.mutates, b.Bytes())
		}
	}
	return w
}

// formatRelations renders a database as bare rel blocks — the format
// the /query endpoint's "database" field reads.
func formatRelations(db join.Database) string {
	names := make([]string, 0, len(db))
	for name := range db {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		rel := db[name]
		fmt.Fprintf(&b, "rel %s(%s)\n", name, strings.Join(rel.Attrs, ","))
		row := make([]int, 0, len(rel.Attrs))
		for i := 0; i < rel.Size(); i++ {
			row = rel.AppendRow(row[:0], i)
			for j, v := range row {
				if j > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(strconv.Itoa(v))
			}
			b.WriteByte('\n')
		}
		b.WriteString("end\n")
	}
	return b.String()
}

// driveTenant fires requests for one tenant on a fixed schedule for
// cfg.Duration and returns every sample. Requests run in their own
// goroutines so a slow response never delays the next send (open-loop
// load), bounded only by a generous in-flight cap to protect the
// generator itself.
func driveTenant(cfg config, spec tenantSpec, w *workload, client *http.Client, seed int64) []sample {
	interval := time.Duration(float64(time.Second) / spec.QPS)
	if interval <= 0 {
		interval = time.Millisecond
	}
	r := rand.New(rand.NewSource(seed))

	var (
		mu      sync.Mutex
		samples []sample
		wg      sync.WaitGroup
	)
	sem := make(chan struct{}, 256)
	deadline := time.Now().Add(cfg.Duration)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for now := time.Now(); now.Before(deadline); now = <-ticker.C {
		write := spec.WritePct > 0 && len(w.mutates) > 0 && r.Float64()*100 < spec.WritePct
		var body []byte
		if write {
			body = w.mutates[r.Intn(len(w.mutates))]
		} else {
			body = w.pick(r)
		}
		wg.Add(1)
		sem <- struct{}{}
		go func(body []byte, write bool) {
			defer wg.Done()
			defer func() { <-sem }()
			var s sample
			if write {
				s = fireMutate(cfg, spec.Name, body, client)
			} else {
				s = fireQuery(cfg, spec.Name, body, client)
			}
			mu.Lock()
			samples = append(samples, s)
			mu.Unlock()
		}(body, write)
	}
	wg.Wait()
	return samples
}

func fireQuery(cfg config, tenant string, body []byte, client *http.Client) sample {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, cfg.URL+"/query", bytes.NewReader(body))
	if err != nil {
		return sample{}
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{latency: lat}
	}
	defer resp.Body.Close()
	var out struct {
		OK bool `json:"ok"`
	}
	json.NewDecoder(resp.Body).Decode(&out)
	return sample{
		latency: lat,
		status:  resp.StatusCode,
		ok:      resp.StatusCode == http.StatusOK && out.OK,
	}
}

// fireMutate posts one NDJSON mutation batch against the tenant's own
// dataset. Mutations flow through the same tenant wall as queries, so
// their 429s land in the same Rejected bucket.
func fireMutate(cfg config, tenant string, body []byte, client *http.Client) sample {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		cfg.URL+"/data/"+tenantDataset+"/mutate", bytes.NewReader(body))
	if err != nil {
		return sample{write: true}
	}
	req.Header.Set("Content-Type", "application/x-ndjson")
	req.Header.Set("X-Tenant", tenant)
	start := time.Now()
	resp, err := client.Do(req)
	lat := time.Since(start)
	if err != nil {
		return sample{latency: lat, write: true}
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	return sample{
		latency: lat,
		status:  resp.StatusCode,
		ok:      resp.StatusCode == http.StatusOK,
		write:   true,
	}
}

// tenantDataset is the per-tenant dataset name write tenants mutate;
// the tenant wall keys datasets by tenant, so every tenant gets its
// own instance behind the same name.
const tenantDataset = "load"

// uploadDataset PUTs the tenant's dataset before the run starts.
func uploadDataset(cfg config, tenant, text string, client *http.Client) error {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut,
		cfg.URL+"/data/"+tenantDataset, strings.NewReader(text))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "text/plain")
	req.Header.Set("X-Tenant", tenant)
	resp, err := client.Do(req)
	if err != nil {
		return fmt.Errorf("upload dataset for tenant %s: %w", tenant, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		blob, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("upload dataset for tenant %s: status %d: %s", tenant, resp.StatusCode, blob)
	}
	return nil
}

// quantile returns the exact q-quantile of the given latencies
// (nearest-rank); 0 when empty.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func summarize(name string, spec tenantSpec, samples []sample) TenantReport {
	rep := TenantReport{Tenant: name, Mix: spec.Mix, TargetQPS: spec.QPS, Sent: len(samples)}
	lats := make([]time.Duration, 0, len(samples))
	for _, s := range samples {
		if s.write {
			rep.Writes++
		}
		switch {
		case s.ok:
			rep.OK++
			// Only successful answers count toward latency quantiles:
			// a rejection is fast by design and would flatter the tail.
			lats = append(lats, s.latency)
		case s.status == http.StatusTooManyRequests:
			rep.Rejected++
		default:
			rep.Errors++
		}
	}
	if rep.Sent > 0 {
		rep.ErrorRate = float64(rep.Errors+rep.Rejected) / float64(rep.Sent)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	rep.P50MS = float64(quantile(lats, 0.50)) / float64(time.Millisecond)
	rep.P99MS = float64(quantile(lats, 0.99)) / float64(time.Millisecond)
	if n := len(lats); n > 0 {
		rep.MaxMS = float64(lats[n-1]) / float64(time.Millisecond)
	}
	return rep
}

// run executes the configured load against cfg.URL and builds the
// report. It is the whole tool minus flag parsing and gate policy, so
// tests can drive it against a stub server.
func run(cfg config) (*Report, error) {
	if len(cfg.Tenants) == 0 {
		return nil, errors.New("no tenants configured (use -tenant name:qps[:mix])")
	}
	if cfg.PoolSize <= 0 {
		cfg.PoolSize = 32
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 10 * time.Second
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConnsPerHost: 256,
		MaxConnsPerHost:     0,
	}}

	if cfg.Wait > 0 {
		if err := waitHealthy(cfg.URL, client, cfg.Wait); err != nil {
			return nil, err
		}
	}

	type result struct {
		spec    tenantSpec
		samples []sample
	}
	results := make([]result, len(cfg.Tenants))
	var wg sync.WaitGroup
	for i, spec := range cfg.Tenants {
		wg.Add(1)
		go func(i int, spec tenantSpec) {
			defer wg.Done()
			hotkey := spec.Mix == "hotkey"
			// Every tenant draws from the same query pool (seeded once)
			// so tenants contend for the same plans; only the pick order
			// differs per tenant.
			w := buildWorkload(cfg.Seed, cfg.PoolSize, hotkey, spec.WritePct > 0)
			if w.dataset != "" {
				if err := uploadDataset(cfg, spec.Name, w.dataset, client); err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: %v (tenant %s driving reads only)\n", err, spec.Name)
					spec.WritePct = 0
				}
			}
			results[i] = result{spec, driveTenant(cfg, spec, w, client, cfg.Seed+int64(i)+1)}
		}(i, spec)
	}
	wg.Wait()

	rep := &Report{URL: cfg.URL, DurationSeconds: cfg.Duration.Seconds()}
	var all []sample
	for _, res := range results {
		rep.Tenants = append(rep.Tenants, summarize(res.spec.Name, res.spec, res.samples))
		all = append(all, res.samples...)
	}
	rep.Overall = summarize("_all", tenantSpec{}, all)
	rep.Overall.Mix = ""
	rep.ServerStats = fetchStats(cfg.URL, client)
	return rep, nil
}

func waitHealthy(url string, client *http.Client, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %v", url, wait)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// fetchStats snapshots the server's /stats so the report carries the
// server-side view (per-tenant admission counters) next to the
// client-side latencies. Best effort: a missing endpoint leaves it out.
func fetchStats(url string, client *http.Client) json.RawMessage {
	resp, err := client.Get(url + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var raw json.RawMessage
	if json.NewDecoder(resp.Body).Decode(&raw) != nil {
		return nil
	}
	return raw
}

// gateConfig is the assertion half: bounds on the protected tenant and
// on the whole server. Zero bounds are not checked.
type gateConfig struct {
	Tenant       string  // the well-behaved tenant to protect
	P99MS        float64 // its p99 bound
	ErrorRate    float64 // its error-rate bound (rejections included)
	OverallP99MS float64 // whole-server p99 envelope
}

// checkGate returns one violation string per broken bound (empty =
// gate passes).
func checkGate(rep *Report, g gateConfig) []string {
	var violations []string
	if g.Tenant != "" {
		var tr *TenantReport
		for i := range rep.Tenants {
			if rep.Tenants[i].Tenant == g.Tenant {
				tr = &rep.Tenants[i]
				break
			}
		}
		if tr == nil {
			return []string{fmt.Sprintf("gate tenant %q not in report", g.Tenant)}
		}
		if tr.Sent == 0 {
			violations = append(violations, fmt.Sprintf("tenant %s sent no requests", g.Tenant))
		}
		if g.P99MS > 0 && tr.P99MS > g.P99MS {
			violations = append(violations,
				fmt.Sprintf("tenant %s p99 %.1fms exceeds bound %.1fms", g.Tenant, tr.P99MS, g.P99MS))
		}
		if tr.ErrorRate > g.ErrorRate {
			violations = append(violations,
				fmt.Sprintf("tenant %s error rate %.4f exceeds bound %.4f", g.Tenant, tr.ErrorRate, g.ErrorRate))
		}
	}
	if g.OverallP99MS > 0 && rep.Overall.P99MS > g.OverallP99MS {
		violations = append(violations,
			fmt.Sprintf("overall p99 %.1fms exceeds envelope %.1fms", rep.Overall.P99MS, g.OverallP99MS))
	}
	return violations
}

func main() {
	var tenants tenantFlags
	var (
		url      = flag.String("url", "http://localhost:8080", "htdserve base URL")
		duration = flag.Duration("duration", 10*time.Second, "how long to drive load")
		seed     = flag.Int64("seed", 1, "workload seed (same seed = same queries)")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		wait     = flag.Duration("wait", 0, "poll /healthz up to this long before starting")
		pool     = flag.Int("pool", 32, "distinct queries in the workload pool")
		out      = flag.String("out", "", "write the JSON report here (default stdout)")

		gateTenant  = flag.String("gate-tenant", "", "gate mode: tenant whose bounds must hold")
		gateP99     = flag.Float64("gate-p99-ms", 0, "gate: max p99 for the gated tenant (0 = unchecked)")
		gateErrRate = flag.Float64("gate-error-rate", 0, "gate: max error rate (429s included) for the gated tenant")
		gateOverall = flag.Float64("gate-overall-p99-ms", 0, "gate: whole-server p99 envelope (0 = unchecked)")
	)
	flag.Var(&tenants, "tenant", "traffic source name:qps[:mix[:writepct]] (mix: uniform|hotkey; writepct: 0..100 share of dataset mutations); repeatable")
	flag.Parse()

	rep, err := run(config{
		URL:      strings.TrimRight(*url, "/"),
		Duration: *duration,
		Tenants:  tenants,
		Seed:     *seed,
		Timeout:  *timeout,
		Wait:     *wait,
		PoolSize: *pool,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(2)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: marshal report: %v\n", err)
		os.Exit(2)
	}
	blob = append(blob, '\n')
	if *out == "" {
		os.Stdout.Write(blob)
	} else if err := os.WriteFile(*out, blob, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
		os.Exit(2)
	}

	if *gateTenant != "" || *gateOverall > 0 {
		violations := checkGate(rep, gateConfig{
			Tenant:       *gateTenant,
			P99MS:        *gateP99,
			ErrorRate:    *gateErrRate,
			OverallP99MS: *gateOverall,
		})
		for _, v := range violations {
			fmt.Fprintf(os.Stderr, "loadgen: GATE VIOLATION: %s\n", v)
		}
		if len(violations) > 0 {
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: gate passed")
	}
}
