package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestParseTenantSpec(t *testing.T) {
	good := map[string]tenantSpec{
		"a:5":              {Name: "a", QPS: 5, Mix: "uniform"},
		"b:2.5:hotkey":     {Name: "b", QPS: 2.5, Mix: "hotkey"},
		"c:100:uniform":    {Name: "c", QPS: 100, Mix: "uniform"},
		"d:10:uniform:25":  {Name: "d", QPS: 10, Mix: "uniform", WritePct: 25},
		"e:10:hotkey:0":    {Name: "e", QPS: 10, Mix: "hotkey"},
		"f:10:uniform:100": {Name: "f", QPS: 10, Mix: "uniform", WritePct: 100},
	}
	for in, want := range good {
		got, err := parseTenantSpec(in)
		if err != nil {
			t.Errorf("parseTenantSpec(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("parseTenantSpec(%q) = %+v, want %+v", in, got, want)
		}
	}
	for _, bad := range []string{"", "a", "a:0", "a:-1", "a:x", "a:1:weird", ":1",
		"a:1:hotkey:extra", "a:1:uniform:-1", "a:1:uniform:101", "a:1:uniform:5:6"} {
		if _, err := parseTenantSpec(bad); err == nil {
			t.Errorf("parseTenantSpec(%q) accepted, want error", bad)
		}
	}
}

func TestQuantileNearestRank(t *testing.T) {
	if q := quantile(nil, 0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond // 1ms..100ms sorted
	}
	if q := quantile(lats, 0.50); q != 50*time.Millisecond {
		t.Fatalf("p50 = %v, want 50ms", q)
	}
	if q := quantile(lats, 0.99); q != 99*time.Millisecond {
		t.Fatalf("p99 = %v, want 99ms", q)
	}
	if q := quantile(lats, 1.0); q != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", q)
	}
}

func TestBuildWorkloadDeterministicAndHotkey(t *testing.T) {
	a := buildWorkload(7, 8, false, false)
	b := buildWorkload(7, 8, false, false)
	if len(a.bodies) != 8 || len(b.bodies) != 8 {
		t.Fatalf("pool sizes %d/%d, want 8", len(a.bodies), len(b.bodies))
	}
	for i := range a.bodies {
		if string(a.bodies[i]) != string(b.bodies[i]) {
			t.Fatalf("workload not deterministic at index %d", i)
		}
	}
	if a.dataset != "" || len(a.mutates) != 0 {
		t.Fatalf("read-only workload grew write artifacts: dataset %d bytes, %d mutation bodies",
			len(a.dataset), len(a.mutates))
	}
	// Bodies must be valid /query payloads.
	var payload struct {
		Query    string `json:"query"`
		Database string `json:"database"`
	}
	if err := json.Unmarshal(a.bodies[0], &payload); err != nil {
		t.Fatalf("body not JSON: %v", err)
	}
	if payload.Query == "" || payload.Database == "" {
		t.Fatalf("body missing query/database: %s", a.bodies[0])
	}
}

func TestBuildWorkloadWrites(t *testing.T) {
	a := buildWorkload(7, 8, false, true)
	b := buildWorkload(7, 8, false, true)
	if a.dataset == "" || len(a.mutates) != 8 {
		t.Fatalf("write workload missing artifacts: dataset %d bytes, %d mutation bodies",
			len(a.dataset), len(a.mutates))
	}
	if a.dataset != b.dataset {
		t.Fatal("write workload dataset not deterministic")
	}
	for i := range a.mutates {
		if string(a.mutates[i]) != string(b.mutates[i]) {
			t.Fatalf("mutation pool not deterministic at index %d", i)
		}
	}
	// Every mutation body must be NDJSON the mutate endpoint accepts:
	// one op object per line with a known op and non-empty rows.
	for _, body := range a.mutates {
		dec := json.NewDecoder(bytes.NewReader(body))
		n := 0
		for {
			var m struct {
				Op   string  `json:"op"`
				Rel  string  `json:"rel"`
				Rows [][]int `json:"rows"`
			}
			if err := dec.Decode(&m); err != nil {
				if err == io.EOF {
					break
				}
				t.Fatalf("mutation body not NDJSON: %v\n%s", err, body)
			}
			n++
			if (m.Op != "insert" && m.Op != "delete") || m.Rel == "" || len(m.Rows) == 0 {
				t.Fatalf("malformed mutation op: %+v", m)
			}
		}
		if n == 0 {
			t.Fatal("empty mutation body")
		}
	}
}

// stubServer imitates the tenant wall: tenant "greedy" has a hard
// budget of maxGreedy requests, everything else always answers 200.
func stubServer(t *testing.T, maxGreedy int) (*httptest.Server, *sync.Map) {
	t.Helper()
	var counts sync.Map // tenant -> *int under mu
	var mu sync.Mutex
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/healthz":
			w.WriteHeader(http.StatusOK)
			return
		case r.URL.Path == "/stats":
			w.Write([]byte(`{"Tenants":{}}`))
			return
		case r.URL.Path == "/data/load" && r.Method == http.MethodPut:
			w.Write([]byte(`{"name":"load","version":1}`))
			return
		case r.URL.Path == "/data/load/mutate" && r.Method == http.MethodPost:
			// Writes flow through the same budget as queries below.
		case r.URL.Path == "/query":
		default:
			http.NotFound(w, r)
			return
		}
		tenant := r.Header.Get("X-Tenant")
		mu.Lock()
		nAny, _ := counts.LoadOrStore(tenant, new(int))
		n := nAny.(*int)
		*n++
		over := tenant == "greedy" && *n > maxGreedy
		mu.Unlock()
		if over {
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(http.StatusTooManyRequests)
			w.Write([]byte(`{"ok":false,"error":"tenant: over limit","retry_after_ms":1000}`))
			return
		}
		w.Write([]byte(`{"ok":true,"row_count":1}`))
	}))
	t.Cleanup(srv.Close)
	return srv, &counts
}

// TestRunAgainstStub drives run() end to end: the greedy tenant must
// see rejections, the polite tenant must stay clean, and the gate must
// tell the two apart.
func TestRunAgainstStub(t *testing.T) {
	srv, _ := stubServer(t, 5)

	rep, err := run(config{
		URL:      srv.URL,
		Duration: 500 * time.Millisecond,
		Timeout:  5 * time.Second,
		Wait:     2 * time.Second,
		Seed:     1,
		PoolSize: 4,
		Tenants: []tenantSpec{
			{Name: "greedy", QPS: 200, Mix: "hotkey"},
			{Name: "polite", QPS: 40, Mix: "uniform", WritePct: 50},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Tenants) != 2 {
		t.Fatalf("report has %d tenants, want 2", len(rep.Tenants))
	}
	byName := map[string]TenantReport{}
	for _, tr := range rep.Tenants {
		byName[tr.Tenant] = tr
	}
	greedy, polite := byName["greedy"], byName["polite"]
	if greedy.Sent == 0 || polite.Sent == 0 {
		t.Fatalf("tenants sent nothing: greedy %+v polite %+v", greedy, polite)
	}
	if greedy.Rejected == 0 {
		t.Fatalf("greedy saw no 429s: %+v", greedy)
	}
	if polite.Errors != 0 || polite.Rejected != 0 {
		t.Fatalf("polite tenant harmed by stub: %+v", polite)
	}
	if polite.Writes == 0 || polite.Writes == polite.Sent {
		t.Fatalf("polite tenant's 50%% write mix did not mix: %+v", polite)
	}
	if greedy.Writes != 0 {
		t.Fatalf("read-only greedy tenant sent writes: %+v", greedy)
	}
	if polite.P99MS <= 0 || polite.P50MS > polite.P99MS {
		t.Fatalf("implausible polite latencies: %+v", polite)
	}
	if rep.Overall.Sent != greedy.Sent+polite.Sent {
		t.Fatalf("overall sent %d != %d + %d", rep.Overall.Sent, greedy.Sent, polite.Sent)
	}
	if rep.ServerStats == nil {
		t.Fatal("report missing server stats snapshot")
	}

	// The gate protects polite and rejects greedy.
	if v := checkGate(rep, gateConfig{Tenant: "polite", P99MS: 10_000, ErrorRate: 0.01}); len(v) != 0 {
		t.Fatalf("gate on polite tenant failed: %v", v)
	}
	if v := checkGate(rep, gateConfig{Tenant: "greedy", ErrorRate: 0.01}); len(v) == 0 {
		t.Fatal("gate on greedy tenant passed, want violation")
	}
	if v := checkGate(rep, gateConfig{Tenant: "nobody"}); len(v) == 0 {
		t.Fatal("gate on unknown tenant passed, want violation")
	}
	if v := checkGate(rep, gateConfig{OverallP99MS: 0.000001}); len(v) == 0 {
		t.Fatal("absurd overall envelope passed, want violation")
	}
}
