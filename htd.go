// Package htd computes hypertree decompositions (HDs) of hypergraphs,
// conjunctive queries and constraint networks. It is a from-scratch Go
// implementation of log-k-decomp, the parallel decomposition algorithm
// with logarithmic recursion depth of
//
//	Gottlob, Lanzinger, Okulmus, Pichler:
//	"Fast Parallel Hypertree Decompositions in Logarithmic Recursion
//	Depth", PODS 2022 (arXiv:2104.13793),
//
// together with the systems that paper evaluates against: det-k-decomp
// (NewDetKDecomp), a BalancedGo-style GHD solver, and a direct
// optimal-width solver.
//
// # Quick start
//
//	h, _ := htd.ParseString("r1(x,y), r2(y,z), r3(z,x).")
//	d, ok, err := htd.Decompose(ctx, h, htd.Options{K: 2, Workers: 4})
//	if ok {
//	    fmt.Print(d)               // the decomposition tree
//	    fmt.Println(d.Width())     // 2
//	}
//
// Solvers accept a context for cancellation and timeouts; every returned
// decomposition can be re-verified with Validate / ValidateGHD.
package htd

import (
	"context"
	"io"

	"repro/internal/balgo"
	"repro/internal/dataset"
	"repro/internal/decomp"
	"repro/internal/detk"
	"repro/internal/hypergraph"
	"repro/internal/join"
	"repro/internal/logk"
	"repro/internal/opt"
	"repro/internal/query"
	"repro/internal/race"
	"repro/internal/service"
	"repro/internal/store"
	"repro/internal/tenant"
)

// Hypergraph is an immutable hypergraph; construct one with a Builder or
// by parsing the HyperBench text format.
type Hypergraph = hypergraph.Hypergraph

// Builder accumulates named edges and produces a Hypergraph.
type Builder = hypergraph.Builder

// Stats summarises structural properties of a hypergraph.
type HypergraphStats = hypergraph.Stats

// Decomposition is a rooted (generalized) hypertree decomposition.
type Decomposition = decomp.Decomp

// Node is one node of a decomposition tree.
type Node = decomp.Node

// Options configures the log-k-decomp solver; see the field docs in the
// underlying type for the hybridisation and ablation knobs.
type Options = logk.Options

// HybridMetric selects the subproblem metric for the hybrid solver.
type HybridMetric = logk.HybridMetric

// Hybrid metric values.
const (
	HybridNone          = logk.HybridNone
	HybridEdgeCount     = logk.HybridEdgeCount
	HybridWeightedCount = logk.HybridWeightedCount
)

// SolverStats reports search-effort counters of a log-k-decomp run.
type SolverStats = logk.Stats

// Parse reads a hypergraph in HyperBench syntax: comma-separated
// name(vertex,...) terms, optionally ending with a period; '%' starts a
// line comment.
func Parse(r io.Reader) (*Hypergraph, error) { return hypergraph.Parse(r) }

// ParseString is Parse over a string.
func ParseString(s string) (*Hypergraph, error) { return hypergraph.ParseString(s) }

// Decompose checks hw(H) ≤ opts.K with log-k-decomp and returns a valid
// HD of width ≤ K when one exists. It is the main entry point of this
// library.
func Decompose(ctx context.Context, h *Hypergraph, opts Options) (*Decomposition, bool, error) {
	return logk.New(h, opts).Decompose(ctx)
}

// DecomposeStats is Decompose but additionally returns the solver's
// effort counters (candidate counts, observed recursion depth, …).
func DecomposeStats(ctx context.Context, h *Hypergraph, opts Options) (*Decomposition, bool, SolverStats, error) {
	s := logk.New(h, opts)
	d, ok, err := s.Decompose(ctx)
	return d, ok, s.Stats(), err
}

// DecomposeK is Decompose with default options and width bound k.
func DecomposeK(ctx context.Context, h *Hypergraph, k int) (*Decomposition, bool, error) {
	return Decompose(ctx, h, Options{K: k})
}

// DecomposeDetK runs the sequential det-k-decomp baseline (Gottlob &
// Samer 2008), useful for small hypergraphs and as a cross-check.
func DecomposeDetK(ctx context.Context, h *Hypergraph, k int) (*Decomposition, bool, error) {
	return detk.New(h, k).Decompose(ctx)
}

// DecomposeGHD searches for a generalized hypertree decomposition of
// width ≤ k using balanced-separator search over the subedge-augmented
// pool (BalancedGo style). subedgeOrder bounds the intersection depth
// of the augmentation (0 picks the default of 2).
func DecomposeGHD(ctx context.Context, h *Hypergraph, k, subedgeOrder int) (*Decomposition, bool, error) {
	return balgo.New(h, balgo.Options{K: k, SubedgeOrder: subedgeOrder}).Decompose(ctx)
}

// OptimalWidth computes hw(H) exactly (searching widths 1..maxK) and a
// witness decomposition. ok is false when hw(H) > maxK. It probes
// widths serially with the det-k-style exact solver; DecomposeOptimal
// is the parallel racing equivalent.
func OptimalWidth(ctx context.Context, h *Hypergraph, maxK int) (int, *Decomposition, bool, error) {
	return opt.New(h, maxK).Solve(ctx)
}

// RaceOptions configures DecomposeOptimal / DecomposeOptimalResult; see
// the field docs of the underlying type. The zero value (plus KMax)
// races up to three width probes with sequential search inside each.
type RaceOptions = race.Config

// RaceResult is the full outcome of a width race, including the proven
// lower bound, its provenance, and per-probe reports.
type RaceResult = race.Result

// DecomposeOptimal computes hw(H) exactly by racing width probes
// concurrently: probes share a live lower/upper bound pair, probes made
// moot by a sibling's result are cancelled, and refutations of smaller
// widths are proven in parallel with the witness search instead of
// serially before it. ok is false when hw(H) > opts.KMax.
func DecomposeOptimal(ctx context.Context, h *Hypergraph, opts RaceOptions) (int, *Decomposition, bool, error) {
	return race.Optimal(ctx, h, opts)
}

// DecomposeOptimalResult is DecomposeOptimal returning the full race
// report (bound provenance, per-probe outcomes, cancellation counts).
func DecomposeOptimalResult(ctx context.Context, h *Hypergraph, opts RaceOptions) (RaceResult, error) {
	return race.New(h, opts).Solve(ctx)
}

// Service runs decompositions as a managed concurrent service: jobs
// submitted from any number of goroutines share one global worker-token
// budget, pass admission control with per-job timeouts, and read
// through a unified cross-request store keyed by hypergraph content
// hash — cached results are returned re-validated without a solver run,
// concurrent identical requests coalesce onto one solver, and the store
// snapshots to disk for warm restarts. Create one with NewService; see
// ServiceConfig for sizing and ServiceConfig.Store for custom backends.
type Service = service.Service

// ServiceConfig sizes a Service; the zero value picks sensible defaults.
type ServiceConfig = service.Config

// ServiceRequest is one decomposition job for a Service.
type ServiceRequest = service.Request

// ServiceResult is the outcome of one Service job.
type ServiceResult = service.Result

// ServiceStats is a snapshot of Service-wide counters.
type ServiceStats = service.Stats

// ServiceMode selects what a Service job computes.
type ServiceMode = service.Mode

// Service job modes.
const (
	// ModeDecide answers hw(H) ≤ K (the default).
	ModeDecide = service.ModeDecide
	// ModeOptimal computes hw(H) exactly over widths 1..K with the
	// racing optimal-width pipeline.
	ModeOptimal = service.ModeOptimal
)

// Service sentinel errors.
var (
	// ErrOverloaded: the job was rejected by admission control.
	ErrOverloaded = service.ErrOverloaded
	// ErrServiceClosed: the job was submitted after Close.
	ErrServiceClosed = service.ErrClosed
)

// NewService returns a decomposition service. Close it when done.
// ServiceConfig.StoreDir is ignored here — use OpenService for a
// disk-backed service, whose store can fail to open.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// OpenService is NewService honouring ServiceConfig.StoreDir: when set
// (and no Store is injected) the service persists through a disk-backed
// tiered store in that directory — the in-memory sharded backend as the
// LRU working set over a crash-safe append-only log — and a restart on
// the same directory serves the whole cached history warm, with zero
// solver runs for repeat submissions and no snapshot file. The service
// owns that backend and flushes and closes it on Close.
func OpenService(cfg ServiceConfig) (*Service, error) { return service.Open(cfg) }

// TenantWall is the multi-tenant admission layer in front of a
// Service's global admission control: per-tenant token-bucket rate
// limits, in-flight caps and bounded wait queues, an optional
// fair-share spare pool that reflows unused per-tenant budget, and
// always-on per-tenant counters with streaming p50/p99 latency.
// Configure it via ServiceConfig.Tenants; reach it with
// Service.Tenants().
type TenantWall = tenant.Wall

// TenantConfig sizes a TenantWall. The zero value enforces nothing but
// still accounts per-tenant counters and latency.
type TenantConfig = tenant.Config

// TenantStats is one tenant's admission snapshot (ServiceStats.Tenants).
type TenantStats = tenant.Stats

// TenantLimitError is a per-tenant admission rejection, carrying the
// tenant id, the gate that rejected ("rate" or "load") and a RetryAfter
// hint sized from the actual token deficit.
type TenantLimitError = tenant.LimitError

// ErrTenantLimited identifies per-tenant admission rejections:
// errors.Is(err, ErrTenantLimited) holds for every TenantLimitError,
// whichever gate rejected.
var ErrTenantLimited = tenant.ErrLimited

// DefaultTenant is the tenant id attributed to requests that name none
// (for htdserve: requests without an X-Tenant header).
const DefaultTenant = tenant.Default

// StoreBackend is the pluggable cross-request storage contract behind a
// Service: width bounds, cached witness decompositions, and per-width
// negative-memo tables, all keyed by hypergraph content hash. Inject a
// custom implementation via ServiceConfig.Store; the default is an
// in-memory sharded backend (NewShardedStore).
type StoreBackend = store.Backend

// StoreConfig sizes the default sharded store backend.
type StoreConfig = store.Config

// StoreStats is a snapshot of a store backend's counters.
type StoreStats = store.Stats

// StoreEntryInfo describes one cached hypergraph (Backend.Info).
type StoreEntryInfo = store.EntryInfo

// StoreSnapshot is the versioned, portable form of a store's contents:
// bounds, witness trees, and refutation summaries. Obtain one with
// Service.Store().Export(), persist it with SaveSnapshotFile, and feed
// it to a fresh service with Store().Import() for a warm restart.
type StoreSnapshot = store.Snapshot

// NewShardedStore returns the default in-memory store backend: entries
// striped over independently locked shards with O(1) LRU eviction.
func NewShardedStore(cfg StoreConfig) StoreBackend { return store.NewSharded(cfg) }

// TieredStore is the disk-backed store backend: a sharded in-memory
// front (the LRU working set, with promotion on disk hits) over a
// crash-safe append-only record log (the full durable state; it never
// evicts). Build one with OpenTieredStore and inject it via
// ServiceConfig.Store, or let OpenService build it from
// ServiceConfig.StoreDir. Close it when done (or let the owning
// service); Closing flushes memo summaries and fsyncs the tail.
type TieredStore = store.Tiered

// TieredStoreConfig sizes a TieredStore: the memory front and the log.
type TieredStoreConfig = store.TieredConfig

// StoreLogConfig configures the append-only log under a TieredStore:
// directory, segment size, fsync cadence, compaction threshold.
type StoreLogConfig = store.LogConfig

// DiskStoreStats is the disk tier's corner of StoreStats (StoreStats.
// Disk, nil for purely in-memory backends).
type DiskStoreStats = store.DiskStats

// OpenTieredStore opens (or creates) a disk-backed tiered store. The
// log directory is replayed on open, truncating a torn tail left by a
// crash — at most the unsynced suffix is lost, never earlier records.
func OpenTieredStore(cfg TieredStoreConfig) (*TieredStore, error) { return store.OpenTiered(cfg) }

// SaveSnapshotFile writes a store snapshot as versioned JSON (atomic
// temp-file + rename).
func SaveSnapshotFile(path string, s StoreSnapshot) error { return store.WriteFile(path, s) }

// LoadSnapshotFile reads and validates a snapshot written by
// SaveSnapshotFile, rejecting mismatched schema versions.
func LoadSnapshotFile(path string) (StoreSnapshot, error) { return store.ReadFile(path) }

// CQ is a conjunctive query: a conjunction of atoms over shared
// variables. Its hypergraph (CQ.Hypergraph) is what gets decomposed.
type CQ = join.Query

// CQAtom is one query atom R(x, y, ...).
type CQAtom = join.Atom

// Relation is a set of integer tuples over named attributes — the
// storage unit of the in-memory relational engine.
type Relation = join.Relation

// Database maps relation names to their data.
type Database = join.Database

// CQDocument is a self-contained query instance: a CQ plus the database
// it runs over, as read and written by the line-oriented text format
// (ParseCQDocument / FormatCQDocument).
type CQDocument = join.Document

// ErrRowBudget is wrapped by query evaluations that exceed their
// per-query row budget (QueryRequest.MaxRows).
var ErrRowBudget = join.ErrRowBudget

// ErrNoQueryPlan is wrapped when a query's hypertree width exceeds the
// requested ceiling: no width-bounded plan exists.
var ErrNoQueryPlan = query.ErrNoPlan

// NewRelation returns an empty relation with the given attribute names.
func NewRelation(attrs ...string) *Relation { return join.NewRelation(attrs...) }

// ParseCQ reads a conjunctive query in Datalog-ish syntax:
// "R(x,y), S(y,z), T(z,x)." with an optional ignored head.
func ParseCQ(src string) (CQ, error) { return join.ParseQuery(src) }

// FormatCQ renders a query in the syntax ParseCQ reads.
func FormatCQ(q CQ) string { return join.FormatQuery(q) }

// ParseCQDocument reads a query+database document: one `query` line and
// `rel name(col,...)` blocks of integer tuples closed by `end`. The
// format round-trips through FormatCQDocument.
func ParseCQDocument(src string) (CQDocument, error) { return join.ParseDocument(src) }

// FormatCQDocument renders a document in the format ParseCQDocument
// reads, with relations in sorted name order.
func FormatCQDocument(doc CQDocument) string { return join.FormatDocument(doc) }

// ParseRelations reads a database alone: rel blocks with no query line
// (the wire form of the HTTP /query "database" field).
func ParseRelations(src string) (Database, error) { return join.ParseRelations(src) }

// QueryPlanner answers conjunctive queries through a decomposition
// Service: the query's hypergraph is decomposed via the service's
// content-addressed plan cache (a repeat query reuses the cached plan
// with zero solver runs) and Yannakakis' algorithm executes over the
// bags under per-query row and time budgets. Create one per Service
// with NewQueryPlanner and share it between goroutines.
type QueryPlanner = query.Planner

// QueryRequest is one conjunctive query to answer. Set Parallelism > 1
// to run the executor's sibling subtrees and large final-join probe
// loops on a worker pool drawn from the service's shared token budget
// (answers stay byte-identical to serial execution).
type QueryRequest = query.Request

// QueryResult is the outcome of one answered query: canonical rows,
// plan width, cache provenance, plan/execution timings, and the
// executor's effort counters.
type QueryResult = query.Result

// QueryStats is a snapshot of a QueryPlanner's counters, including the
// aggregated executor effort (indexes built, tuples probed, parallel
// vs inline tasks).
type QueryStats = query.Stats

// QueryExecStats is one query's executor effort: hash indexes built,
// tuples probed, relational operations run, and how much of the work
// ran on spawned workers (QueryResult.Exec).
type QueryExecStats = join.ExecStats

// NewQueryPlanner returns a planner executing queries over svc.
func NewQueryPlanner(svc *Service) *QueryPlanner { return query.NewPlanner(svc) }

// DatasetRegistry is the named-dataset registry behind a Service
// (Service.Datasets()): tenant-namespaced, server-resident, versioned
// databases whose relations carry delta-maintained hash indexes.
// Upload once with Put, query many times by name (QueryRequest.Dataset)
// — repeat queries skip parsing and index building — and mutate with
// tuple deltas that advance the version in O(delta) instead of
// rebuilding. Prefer this over shipping databases inline with every
// request; the inline QueryRequest.DB path remains supported for
// self-contained one-shot queries.
type DatasetRegistry = dataset.Registry

// DatasetConfig bounds a DatasetRegistry (ServiceConfig.Datasets):
// dataset count, per-dataset tuples, retained pinnable versions, and
// the inline-database parse cache size.
type DatasetConfig = dataset.Config

// Dataset is one named, versioned database. Mutation batches advance
// its version by exactly one; every version publishes an immutable
// copy-on-write snapshot, so in-flight queries read a consistent
// version while writers advance.
type Dataset = dataset.Dataset

// DatasetSnapshot is one immutable published dataset version.
type DatasetSnapshot = dataset.Snapshot

// DatasetMutation is one delta line of a mutation batch: insert or
// delete of a tuple batch against one relation (POST /data/{name}/mutate).
type DatasetMutation = dataset.Mutation

// DatasetMutationResult reports one committed mutation batch: the new
// version and insert/dedup/delete/miss counts.
type DatasetMutationResult = dataset.MutationResult

// DatasetInfo is the metadata view of a dataset (GET /data/{name}).
type DatasetInfo = dataset.Info

// DatasetRelInfo describes one relation of a dataset version.
type DatasetRelInfo = dataset.RelInfo

// DatasetStats aggregates registry-wide counters (for /stats).
type DatasetStats = dataset.Stats

// DatasetParseCache is the single-flight, content-addressed cache of
// parsed inline databases (DatasetRegistry.ParseCache()): concurrent
// identical inline uploads pay one parse and share captured indexes.
type DatasetParseCache = dataset.ParseCache

// DatasetParseCacheStats counts parse-cache outcomes.
type DatasetParseCacheStats = dataset.ParseCacheStats

// Dataset sentinel errors.
var (
	// ErrDatasetNotFound: no dataset with that name for the tenant.
	ErrDatasetNotFound = dataset.ErrNotFound
	// ErrDatasetVersionGone: the pinned version fell out of the
	// retention window (or the dataset was replaced).
	ErrDatasetVersionGone = dataset.ErrVersionGone
	// ErrDatasetFutureVersion: the pinned version does not exist yet.
	ErrDatasetFutureVersion = dataset.ErrFutureVersion
	// ErrDatasetLimit: a registry or per-dataset tuple cap would be
	// exceeded.
	ErrDatasetLimit = dataset.ErrLimit
)

// MaintainedRelation is a relation under incremental maintenance: set
// semantics, tombstoned deletes with compaction at commit, and hash
// indexes maintained as layered deltas instead of rebuilt. Datasets
// hold one per relation; reach them through DatasetRegistry.
type MaintainedRelation = join.MRel

// NewMaintainedRelation puts a relation under incremental maintenance
// (deduplicating it — relations under maintenance are sets).
func NewMaintainedRelation(r *Relation) *MaintainedRelation { return join.NewMRel(r) }

// AggregateSpec is one aggregate head over a conjunctive query's
// answers: COUNT, COUNT DISTINCT over a projection, or SUM/MIN/MAX of
// one variable — each optionally per GROUP BY group. Set
// QueryRequest.Aggregate to answer the aggregate by pushdown over the
// join tree instead of materialising rows.
type AggregateSpec = join.AggSpec

// AggregateKind selects the aggregate operation of an AggregateSpec.
type AggregateKind = join.AggKind

// Aggregate kinds.
const (
	AggCount         = join.AggCount
	AggCountDistinct = join.AggCountDistinct
	AggSum           = join.AggSum
	AggMin           = join.AggMin
	AggMax           = join.AggMax
)

// AggregateResult is one answered aggregate in canonical form: group
// columns in sorted variable order, group rows sorted, values parallel
// to the groups. Value() returns the scalar answer of a no-GROUP-BY
// spec.
type AggregateResult = join.AggResult

// ParseAggregate reads an aggregate head: "count",
// "count distinct(x,y)", "sum(x)", "min(x)", "max(x)", each optionally
// prefixed "group g1,g2:". See docs/QUERY_FORMAT.md.
func ParseAggregate(src string) (AggregateSpec, error) { return join.ParseAggregate(src) }

// FormatAggregate renders an aggregate head in the syntax
// ParseAggregate reads.
func FormatAggregate(spec AggregateSpec) string { return join.FormatAggregate(spec) }

// AggregateRows folds an already-materialised full-query result — the
// definitional (and naive) semantics the pushdown engine reproduces
// without materialisation.
func AggregateRows(rel *Relation, spec AggregateSpec) (AggregateResult, error) {
	return join.AggregateRows(rel, spec)
}

// EvalQuery answers one conjunctive query end to end over svc — the
// paper's §1 motivating application as a single call: hash the query's
// hypergraph, fetch or compute a minimum-width decomposition through
// the service's plan cache, and run Yannakakis over the bags. Callers
// issuing many queries should hold a NewQueryPlanner instead, which
// additionally accumulates QueryStats across calls.
func EvalQuery(ctx context.Context, svc *Service, req QueryRequest) (QueryResult, error) {
	return query.NewPlanner(svc).Eval(ctx, req)
}

// EvalQueryNaive answers the query by the exponential left-to-right
// cross join — the correctness baseline the differential tests compare
// the decomposition pipeline against.
func EvalQueryNaive(q CQ, db Database) (*Relation, error) { return join.EvaluateNaive(q, db) }

// CanonicalRows projects a full-query result onto sorted attributes and
// sorts the tuples, the form in which two evaluations of the same query
// are comparable (and repeat HTTP answers byte-identical).
func CanonicalRows(rel *Relation) (*Relation, error) { return query.Canonical(rel) }

// Validate checks the four HD conditions (including the special
// condition) and returns nil iff d is a valid hypertree decomposition
// of its hypergraph.
func Validate(d *Decomposition) error { return decomp.CheckHD(d) }

// ValidateGHD checks validity as a generalized hypertree decomposition
// (no special condition).
func ValidateGHD(d *Decomposition) error { return decomp.CheckGHD(d) }

// ValidateWidth verifies width(d) ≤ k.
func ValidateWidth(d *Decomposition, k int) error { return decomp.CheckWidth(d, k) }
